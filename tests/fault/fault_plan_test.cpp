// FaultClock / FaultPlan unit tests: the keyed-hash decision source, the
// duty-cycle and bit-flip helpers, plan validation, and the log utilities.

#include "ajac/fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

namespace ajac::fault {
namespace {

TEST(FaultClock, SameKeySameBits) {
  const FaultClock clk(123);
  EXPECT_EQ(clk.bits(FaultClock::kMessageDrop, 7, 11, 2),
            clk.bits(FaultClock::kMessageDrop, 7, 11, 2));
  // A fresh clock with the same seed makes the same decisions: there is no
  // hidden state to advance.
  const FaultClock clk2(123);
  EXPECT_EQ(clk.bits(FaultClock::kBitFlipEntry, 1, 2, 3),
            clk2.bits(FaultClock::kBitFlipEntry, 1, 2, 3));
}

TEST(FaultClock, StreamsAndKeysAreIndependent) {
  const FaultClock clk(123);
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream : {FaultClock::kMessageDrop,
                               FaultClock::kMessageDuplicate,
                               FaultClock::kMessageReorder}) {
    for (std::uint64_t a = 0; a < 4; ++a) {
      for (std::uint64_t b = 0; b < 4; ++b) {
        seen.insert(clk.bits(stream, a, b));
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u * 4u * 4u);  // no collisions on this tiny set
  EXPECT_NE(clk.bits(1, 2, 3), FaultClock(124).bits(1, 2, 3));
}

TEST(FaultClock, UniformAndBernoulliBehave) {
  const FaultClock clk(99);
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double u = clk.uniform(FaultClock::kMessageDrop, 0, k);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_FALSE(clk.bernoulli(0.0, FaultClock::kMessageDrop, 0, k));
    EXPECT_TRUE(clk.bernoulli(1.0, FaultClock::kMessageDrop, 0, k));
    EXPECT_LT(clk.pick(7, FaultClock::kBitFlipBit, 0, k), 7u);
  }
}

TEST(FaultClock, DutyCycleWindows) {
  // period 4, duty 0.5: iterations 0,1 active, 2,3 inactive, repeating.
  for (index_t i : {0, 1, 4, 5, 8, 9}) EXPECT_TRUE(duty_active(4, 0.5, i));
  for (index_t i : {2, 3, 6, 7}) EXPECT_FALSE(duty_active(4, 0.5, i));
  for (index_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(duty_active(4, 1.0, i));
    EXPECT_FALSE(duty_active(4, 0.0, i));
  }
}

TEST(FaultClock, FlipBitIsAnInvolutionAndStaysFinite) {
  const double v = -3.14159;
  for (int bit = 0; bit < 52; ++bit) {
    const double flipped = flip_bit(v, bit);
    EXPECT_NE(flipped, v);
    EXPECT_TRUE(std::isfinite(flipped));
    EXPECT_EQ(flip_bit(flipped, bit), v);
  }
  // Low mantissa bits are tiny relative perturbations.
  EXPECT_NEAR(flip_bit(v, 0), v, 1e-12);
}

FaultPlan valid_plan() {
  FaultPlan plan;
  plan.stragglers.push_back({.actor = 0});
  plan.stale_reads.push_back({.actor = 1, .period = 8, .duty = 0.5});
  plan.message_faults.push_back({.sender = -1, .receiver = 2,
                                 .drop_probability = 0.1});
  plan.bit_flips.push_back({.actor = -1, .probability = 0.01});
  plan.crashes.push_back({.actor = 3, .crash_iteration = 4});
  return plan;
}

TEST(FaultPlan, EmptyAndValidate) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan = valid_plan();
  EXPECT_FALSE(plan.empty());
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(FaultPlan, ValidateRejectsOutOfRangeActors) {
  auto plan = valid_plan();
  EXPECT_THROW(plan.validate(3), std::logic_error);  // crash actor 3
  plan = valid_plan();
  plan.stragglers[0].actor = -1;  // stragglers require a concrete actor
  EXPECT_THROW(plan.validate(4), std::logic_error);
  plan = valid_plan();
  plan.message_faults[0].receiver = 9;
  EXPECT_THROW(plan.validate(4), std::logic_error);
}

TEST(FaultPlan, ValidateRejectsBadParameters) {
  auto plan = valid_plan();
  plan.message_faults[0].drop_probability = 1.5;
  EXPECT_THROW(plan.validate(4), std::logic_error);
  plan = valid_plan();
  plan.stale_reads[0].duty = -0.1;
  EXPECT_THROW(plan.validate(4), std::logic_error);
  plan = valid_plan();
  plan.stale_reads[0].period = 0;
  EXPECT_THROW(plan.validate(4), std::logic_error);
  plan = valid_plan();
  plan.bit_flips[0].bit = 63;  // sign bit: out of the allowed range
  EXPECT_THROW(plan.validate(4), std::logic_error);
  plan = valid_plan();
  plan.bit_flips[0].first_iteration = 10;
  plan.bit_flips[0].last_iteration = 5;
  EXPECT_THROW(plan.validate(4), std::logic_error);
  plan = valid_plan();
  plan.crashes[0].dead_seconds = -1.0;
  EXPECT_THROW(plan.validate(4), std::logic_error);
  plan = valid_plan();
  plan.stragglers[0].delay_factor = 0.5;
  EXPECT_THROW(plan.validate(4), std::logic_error);
}

TEST(FaultPlan, ValidateRejectsDoubleInjection) {
  auto plan = valid_plan();
  plan.stragglers.push_back({.actor = 0});  // duplicate actor
  EXPECT_THROW(plan.validate(4), std::logic_error);
  plan = valid_plan();
  plan.stale_reads.push_back({.actor = -1});  // wildcard + explicit
  EXPECT_THROW(plan.validate(4), std::logic_error);
  plan = valid_plan();
  plan.crashes.push_back({.actor = 3});
  EXPECT_THROW(plan.validate(4), std::logic_error);
}

TEST(FaultLog, CanonicalizeSortsByActorThenCounter) {
  FaultLog log{
      {FaultKind::kBitFlip, 1, 5, 10, 3},
      {FaultKind::kStragglerOn, 0, 7, 0, 0},
      {FaultKind::kCrash, 0, 2, 0, 0},
      {FaultKind::kBitFlip, 1, 5, 4, 0},
  };
  canonicalize(log);
  EXPECT_EQ(log[0].actor, 0);
  EXPECT_EQ(log[0].counter, 2);
  EXPECT_EQ(log[1].counter, 7);
  EXPECT_EQ(log[2].detail, 4);  // same (actor, counter, kind): detail breaks
  EXPECT_EQ(log[3].detail, 10);
}

TEST(FaultLog, JsonRoundTripShape) {
  EXPECT_EQ(to_json(FaultLog{}), "[]");
  const FaultLog log{{FaultKind::kMessageDrop, 2, 17, 3, 0}};
  const std::string json = to_json(log);
  EXPECT_NE(json.find("\"kind\": \"message_drop\""), std::string::npos);
  EXPECT_NE(json.find("\"actor\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"counter\": 17"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(FaultLog, KindNamesAreStable) {
  EXPECT_STREQ(kind_name(FaultKind::kStragglerOn), "straggler_on");
  EXPECT_STREQ(kind_name(FaultKind::kStaleWindowOn), "stale_window_on");
  EXPECT_STREQ(kind_name(FaultKind::kMessageDuplicate), "message_duplicate");
  EXPECT_STREQ(kind_name(FaultKind::kMessageReorder), "message_reorder");
  EXPECT_STREQ(kind_name(FaultKind::kBitFlip), "bit_flip");
  EXPECT_STREQ(kind_name(FaultKind::kCrash), "crash");
  EXPECT_STREQ(kind_name(FaultKind::kRecover), "recover");
}

}  // namespace
}  // namespace ajac::fault
