// Fault injection in the shared-memory runtime: convergence under every
// fault class, hook correctness, and log determinism (the SharedFault*
// suites also run under ThreadSanitizer — see CMakePresets.json).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "fault_test_util.hpp"
#include "test_helpers.hpp"

namespace ajac::runtime {
namespace {

gen::LinearProblem problem(std::uint64_t salt = 0) {
  return gen::make_problem("fd", gen::fd_laplacian_2d(10, 10),
                           ajac::testing::test_seed(salt));
}

SharedOptions base_options(index_t threads) {
  SharedOptions o;
  o.num_threads = threads;
  o.tolerance = 1e-6;
  o.max_iterations = 100000;
  o.record_history = false;
  o.yield = true;
  return o;
}

std::shared_ptr<fault::FaultPlan> make_plan() {
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = ajac::testing::test_seed();
  return plan;
}

TEST(SharedFaults, SingleThreadPlanMatchesNoPlanBitwise) {
  // With one thread the async solve is deterministic, and a plan without
  // stale reads or bit flips must not perturb the arithmetic: the hooks
  // only cost time. This pins the ActiveFaults read/flip paths as exact
  // pass-throughs.
  const auto p = problem();
  auto o = base_options(1);
  const SharedResult clean = solve_shared(p.a, p.b, p.x0, o);
  auto plan = make_plan();
  plan->stragglers.push_back(
      {.actor = 0, .extra_delay_us = 1.0, .period = 8, .duty = 0.5});
  plan->crashes.push_back(
      {.actor = 0, .crash_iteration = 4, .dead_seconds = 1e-5});
  o.fault_plan = plan;
  const SharedResult faulty = solve_shared(p.a, p.b, p.x0, o);
  ASSERT_EQ(clean.x.size(), faulty.x.size());
  for (std::size_t i = 0; i < clean.x.size(); ++i) {
    ASSERT_EQ(clean.x[i], faulty.x[i]) << "diverged at row " << i;
  }
  EXPECT_FALSE(faulty.fault_events.empty());
  EXPECT_TRUE(clean.fault_events.empty());
}

TEST(SharedFaults, EmptyPlanBehavesLikeNullPointer) {
  const auto p = problem();
  auto o = base_options(2);
  o.fault_plan = std::make_shared<fault::FaultPlan>();  // empty: no-op path
  const SharedResult r = solve_shared(p.a, p.b, p.x0, o);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.fault_events.empty());
}

TEST(SharedFaults, ConvergesUnderEachFaultClass) {
  const auto p = problem();
  struct Case {
    const char* name;
    std::shared_ptr<fault::FaultPlan> plan;
  };
  std::vector<Case> cases;
  {
    auto plan = make_plan();
    plan->stragglers.push_back(
        {.actor = 0, .extra_delay_us = 30.0, .period = 16, .duty = 0.5});
    cases.push_back({"straggler", plan});
  }
  {
    auto plan = make_plan();
    plan->stale_reads.push_back({.actor = -1, .period = 16, .duty = 0.5});
    cases.push_back({"stale", plan});
  }
  {
    auto plan = make_plan();
    plan->bit_flips.push_back({.actor = -1, .probability = 1e-3, .bit = 16});
    cases.push_back({"bitflip", plan});
  }
  {
    auto plan = make_plan();
    plan->crashes.push_back(
        {.actor = 1, .crash_iteration = 8, .dead_seconds = 1e-4});
    cases.push_back({"crash", plan});
  }
  {
    auto plan = make_plan();
    plan->crashes.push_back({.actor = 1,
                             .crash_iteration = 8,
                             .dead_seconds = 1e-4,
                             .reset_state_on_recovery = true});
    cases.push_back({"crash+reset", plan});
  }
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    auto o = base_options(4);
    o.fault_plan = c.plan;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, o);
    EXPECT_TRUE(r.converged);
    Vector res(p.b.size());
    p.a.residual(r.x, p.b, res);
    Vector r0(p.b.size());
    p.a.residual(p.x0, p.b, r0);
    EXPECT_LE(vec::norm1(res) / vec::norm1(r0), o.tolerance * 1.5);
    ajac::testing::dump_fault_log_if_failed(
        std::string("shared_converge_") + c.name, r.fault_events);
  }
}

TEST(SharedFaults, StragglerLogsWindowEntries) {
  const auto p = problem();
  auto o = base_options(4);
  o.tolerance = 0.0;  // fixed-length run: iteration counts are exact
  o.max_iterations = 64;
  o.final_polish = false;
  auto plan = make_plan();
  plan->stragglers.push_back(
      {.actor = 0, .extra_delay_us = 1.0, .period = 16, .duty = 0.5});
  o.fault_plan = plan;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, o);
  // Window entries at iterations 0, 16, 32, 48 of actor 0 and nothing
  // else: threads park at the iteration cap rather than overrun it, so
  // the whole log — not just a below-cap slice — is exact.
  const fault::FaultLog& log = r.fault_events;
  ASSERT_EQ(log.size(), 4u);
  for (std::size_t k = 0; k < log.size(); ++k) {
    EXPECT_EQ(log[k].kind, fault::FaultKind::kStragglerOn);
    EXPECT_EQ(log[k].actor, 0);
    EXPECT_EQ(log[k].counter, static_cast<index_t>(16 * k));
  }
  ajac::testing::dump_fault_log_if_failed("shared_straggler_windows",
                                          r.fault_events);
}

TEST(SharedFaults, CrashLogsCrashThenRecover) {
  const auto p = problem();
  auto o = base_options(4);
  o.tolerance = 0.0;
  o.max_iterations = 32;
  o.final_polish = false;
  auto plan = make_plan();
  plan->crashes.push_back(
      {.actor = 2, .crash_iteration = 10, .dead_seconds = 1e-5});
  o.fault_plan = plan;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, o);
  ASSERT_EQ(r.fault_events.size(), 2u);
  EXPECT_EQ(r.fault_events[0].kind, fault::FaultKind::kCrash);
  EXPECT_EQ(r.fault_events[0].actor, 2);
  EXPECT_EQ(r.fault_events[0].counter, 10);
  EXPECT_EQ(r.fault_events[1].kind, fault::FaultKind::kRecover);
  EXPECT_EQ(r.fault_events[1].actor, 2);
  ajac::testing::dump_fault_log_if_failed("shared_crash_recover",
                                          r.fault_events);
}

TEST(SharedFaults, BitFlipEventsCarryRowAndBit) {
  const auto p = problem();
  const index_t n = p.a.num_rows();
  auto o = base_options(4);
  o.tolerance = 0.0;
  o.max_iterations = 64;
  o.final_polish = false;
  auto plan = make_plan();
  plan->bit_flips.push_back({.actor = -1, .probability = 0.05, .bit = -1});
  o.fault_plan = plan;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, o);
  EXPECT_FALSE(r.fault_events.empty());  // ~0.05 * 4 * 64 * 25 expected hits
  for (const fault::FaultEvent& e : r.fault_events) {
    EXPECT_EQ(e.kind, fault::FaultKind::kBitFlip);
    EXPECT_GE(e.detail, 0);   // flipped row
    EXPECT_LT(e.detail, n);
    EXPECT_GE(e.detail2, 0);  // mantissa bit
    EXPECT_LT(e.detail2, 52);
  }
  ajac::testing::dump_fault_log_if_failed("shared_bitflip_rows",
                                          r.fault_events);
}

TEST(SharedFaults, SynchronousModeRejectsPlan) {
  const auto p = problem();
  auto o = base_options(2);
  o.synchronous = true;
  auto plan = make_plan();
  plan->stragglers.push_back({.actor = 0});
  o.fault_plan = plan;
  EXPECT_THROW(solve_shared(p.a, p.b, p.x0, o), std::logic_error);
}

TEST(SharedFaults, PlanValidatedAgainstThreadCount) {
  const auto p = problem();
  auto o = base_options(2);
  auto plan = make_plan();
  plan->stragglers.push_back({.actor = 5});  // no such thread
  o.fault_plan = plan;
  EXPECT_THROW(solve_shared(p.a, p.b, p.x0, o), std::logic_error);
}

// Same plan, same thread count => bitwise-identical fault logs, no matter
// how the OS interleaves the threads. Every decision is a pure hash of
// logical coordinates, so the log is a slice of a fixed decision table —
// and because threads park at the iteration cap instead of overrunning
// it, the executed coordinate set is exactly [0, max_iterations) per
// thread. The full log is compared, with no below-cap filtering.
TEST(SharedFaultDeterminism, SameSeedSameLog) {
  const auto p = problem();
  auto o = base_options(4);
  o.tolerance = 0.0;
  o.max_iterations = 48;
  o.final_polish = false;
  auto plan = make_plan();
  plan->stragglers.push_back(
      {.actor = 0, .extra_delay_us = 5.0, .period = 16, .duty = 0.5});
  plan->stale_reads.push_back({.actor = 1, .period = 8, .duty = 0.5});
  plan->bit_flips.push_back({.actor = -1, .probability = 0.02, .bit = -1});
  plan->crashes.push_back(
      {.actor = 3, .crash_iteration = 7, .dead_seconds = 1e-5});
  o.fault_plan = plan;
  const SharedResult first = solve_shared(p.a, p.b, p.x0, o);
  const SharedResult second = solve_shared(p.a, p.b, p.x0, o);
  EXPECT_FALSE(first.fault_events.empty());
  EXPECT_EQ(first.fault_events, second.fault_events);
  ajac::testing::dump_fault_log_if_failed("shared_determinism_run1",
                                          first.fault_events);
  ajac::testing::dump_fault_log_if_failed("shared_determinism_run2",
                                          second.fault_events);
}

// The determinism contract is kernel-independent: fault decisions hash
// logical coordinates (seed, thread, iteration, row) that both kernel
// paths visit identically, so the blocked layer reproduces the reference
// path's log exactly, not merely its own.
TEST(SharedFaultDeterminism, SameSeedSameLogBlockedKernel) {
  const auto p = problem();
  auto o = base_options(4);
  o.tolerance = 0.0;
  o.max_iterations = 48;
  o.final_polish = false;
  auto plan = make_plan();
  plan->stragglers.push_back(
      {.actor = 0, .extra_delay_us = 5.0, .period = 16, .duty = 0.5});
  plan->stale_reads.push_back({.actor = 1, .period = 8, .duty = 0.5});
  plan->bit_flips.push_back({.actor = -1, .probability = 0.02, .bit = -1});
  plan->crashes.push_back({.actor = 3,
                           .crash_iteration = 7,
                           .dead_seconds = 1e-5,
                           .reset_state_on_recovery = true});
  o.fault_plan = plan;
  o.kernel = KernelKind::kBlocked;
  const SharedResult first = solve_shared(p.a, p.b, p.x0, o);
  const SharedResult second = solve_shared(p.a, p.b, p.x0, o);
  o.kernel = KernelKind::kReference;
  const SharedResult reference = solve_shared(p.a, p.b, p.x0, o);
  EXPECT_FALSE(first.fault_events.empty());
  EXPECT_EQ(first.fault_events, second.fault_events);
  EXPECT_EQ(first.fault_events, reference.fault_events);
  ajac::testing::dump_fault_log_if_failed("shared_determinism_blocked_run1",
                                          first.fault_events);
  ajac::testing::dump_fault_log_if_failed("shared_determinism_blocked_run2",
                                          second.fault_events);
  ajac::testing::dump_fault_log_if_failed("shared_determinism_blocked_ref",
                                          reference.fault_events);
}

TEST(SharedFaultDeterminism, DifferentSeedsDiverge) {
  const auto p = problem();
  auto o = base_options(4);
  o.tolerance = 0.0;
  o.max_iterations = 48;
  o.final_polish = false;
  auto plan_a = make_plan();
  plan_a->bit_flips.push_back({.actor = -1, .probability = 0.05, .bit = -1});
  auto plan_b = std::make_shared<fault::FaultPlan>(*plan_a);
  plan_b->seed = plan_a->seed + 1;
  o.fault_plan = plan_a;
  const SharedResult a = solve_shared(p.a, p.b, p.x0, o);
  o.fault_plan = plan_b;
  const SharedResult b = solve_shared(p.a, p.b, p.x0, o);
  EXPECT_FALSE(a.fault_events.empty());
  EXPECT_NE(a.fault_events, b.fault_events);
}

}  // namespace
}  // namespace ajac::runtime
