#pragma once
// Helpers shared by the fault-injection test suites.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "ajac/fault/fault_plan.hpp"

namespace ajac::testing {

/// If the current test has failed and AJAC_FAULT_LOG_DIR is set, dump the
/// fault log as JSON into that directory (CI uploads it as an artifact, so
/// a red determinism run ships the exact event sequence it saw).
inline void dump_fault_log_if_failed(const std::string& name,
                                     const fault::FaultLog& log) {
  if (!::testing::Test::HasFailure()) return;
  const char* dir = std::getenv("AJAC_FAULT_LOG_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::ofstream out(std::string(dir) + "/" + name + ".json");
  out << fault::to_json(log) << "\n";
}

}  // namespace ajac::testing
