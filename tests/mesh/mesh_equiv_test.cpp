// Cross-runtime equivalence suite for the concurrent mesh (src/mesh).
//
// The mesh's correctness story is differential: it must agree with the
// runtimes whose behavior is already pinned down whenever their schedules
// coincide, and bracket them when they do not.
//
//   - Synchronous mode runs solve_shared's 3-barrier lockstep over real
//     queues, so on disjoint contiguous row sets it must be BITWISE
//     identical to solve_shared — same x, same per-actor iteration
//     counts, same stop decision — on all three matrix families (FD
//     5-point, FD 7-point, unstructured FE). Comparisons are on raw bit
//     patterns, so -0.0/+0.0 or NaN drift would also fail.
//   - A 1-agent asynchronous mesh has nobody to message: it must be the
//     sequential Jacobi iteration to the last ULP.
//   - Synchronous traces are fully propagated by construction, so
//     model::replay_trace must reproduce the recorded execution bitwise.
//   - Overlapping and non-contiguous ownership change the schedule, not
//     the fixed point: those runs must still converge, to the same
//     solution within a tolerance-derived bound.
//   - Asynchronously the mesh runs real threads, so iteration counts are
//     nondeterministic — but they must bracket the discrete-event
//     simulator's prediction within a generous factor.

#include "ajac/mesh/mesh_jacobi.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/mesh/row_sets.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/csr.hpp"
#include "test_helpers.hpp"

namespace ajac::mesh {
namespace {

struct NamedMatrix {
  const char* name;
  CsrMatrix a;
};

/// Same three families as the kernel-equivalence suite: FD 5-point and
/// 7-point stencils plus the unstructured FE matrix.
std::vector<NamedMatrix> test_matrices() {
  std::vector<NamedMatrix> out;
  out.push_back({"fd5pt_12x12", gen::fd_laplacian_2d(12, 12)});
  out.push_back({"fd7pt_5x5x5", gen::fd_laplacian_3d(5, 5, 5)});
  gen::FeMeshOptions fe;
  fe.nx = 8;
  fe.ny = 8;
  out.push_back({"fe_8x8", gen::fe_laplacian_2d(fe)});
  return out;
}

void expect_bitwise_equal(const Vector& mesh, const Vector& oracle) {
  ASSERT_EQ(mesh.size(), oracle.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(mesh[i]),
              std::bit_cast<std::uint64_t>(oracle[i]))
        << "x[" << i << "] mesh " << mesh[i] << " vs oracle " << oracle[i];
  }
}

double max_abs_diff(const Vector& a, const Vector& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = std::max(acc, std::abs(a[i] - b[i]));
  }
  return acc;
}

// --- synchronous mode is bitwise solve_shared -----------------------------

TEST(MeshEquiv, SynchronousBitwiseMatchesSolveShared) {
  for (const NamedMatrix& m : test_matrices()) {
    const auto p =
        gen::make_problem(m.name, m.a, testing::test_seed(/*salt=*/11));
    for (index_t agents : {1, 2, 3, 4, 7}) {
      SCOPED_TRACE(::testing::Message()
                   << m.name << " agents=" << agents << " seed "
                   << testing::test_seed(11));
      runtime::SharedOptions so;
      so.num_threads = agents;
      so.synchronous = true;
      so.tolerance = 1e-8;
      so.max_iterations = 4000;
      so.record_history = false;
      so.kernel = runtime::KernelKind::kReference;
      const auto shared = runtime::solve_shared(p.a, p.b, p.x0, so);

      MeshOptions mo;
      mo.num_agents = agents;
      mo.synchronous = true;
      mo.tolerance = 1e-8;
      mo.max_iterations = 4000;
      mo.record_history = false;
      const auto mesh = solve_mesh(p.a, p.b, p.x0, mo);

      expect_bitwise_equal(mesh.x, shared.x);
      EXPECT_EQ(mesh.converged, shared.converged);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(mesh.final_rel_residual_1),
                std::bit_cast<std::uint64_t>(shared.final_rel_residual_1));
      EXPECT_EQ(mesh.total_relaxations, shared.total_relaxations);
      EXPECT_EQ(mesh.polish_sweeps, shared.polish_sweeps);
      ASSERT_EQ(mesh.iterations_per_agent.size(),
                shared.iterations_per_thread.size());
      for (std::size_t t = 0; t < mesh.iterations_per_agent.size(); ++t) {
        EXPECT_EQ(mesh.iterations_per_agent[t],
                  shared.iterations_per_thread[t]);
      }
    }
  }
}

// The blocked kernels are themselves bitwise-equivalent to the reference
// path in synchronous mode, so the mesh must transitively match the
// repo's default shared configuration too.
TEST(MeshEquiv, SynchronousBitwiseMatchesBlockedKernels) {
  const auto p = gen::make_problem("fd16", gen::fd_laplacian_2d(16, 16),
                                   testing::test_seed(/*salt=*/12));
  runtime::SharedOptions so;
  so.num_threads = 4;
  so.synchronous = true;
  so.tolerance = 1e-8;
  so.max_iterations = 4000;
  so.record_history = false;
  so.kernel = runtime::KernelKind::kBlocked;
  const auto shared = runtime::solve_shared(p.a, p.b, p.x0, so);

  MeshOptions mo;
  mo.num_agents = 4;
  mo.synchronous = true;
  mo.tolerance = 1e-8;
  mo.max_iterations = 4000;
  mo.record_history = false;
  const auto mesh = solve_mesh(p.a, p.b, p.x0, mo);

  expect_bitwise_equal(mesh.x, shared.x);
  EXPECT_EQ(mesh.converged, shared.converged);
}

// Fixed-iteration synchronous runs (tolerance 0) must also agree: this
// pins the park-at-cap/stop plumbing, not just the tolerance path.
TEST(MeshEquiv, SynchronousFixedIterationsBitwise) {
  const auto p = gen::make_problem("fd12", gen::fd_laplacian_2d(12, 12),
                                   testing::test_seed(/*salt=*/13));
  runtime::SharedOptions so;
  so.num_threads = 3;
  so.synchronous = true;
  so.tolerance = 0.0;
  so.max_iterations = 25;
  so.record_history = false;
  so.kernel = runtime::KernelKind::kReference;
  const auto shared = runtime::solve_shared(p.a, p.b, p.x0, so);

  MeshOptions mo;
  mo.num_agents = 3;
  mo.synchronous = true;
  mo.tolerance = 0.0;
  mo.max_iterations = 25;
  mo.record_history = false;
  const auto mesh = solve_mesh(p.a, p.b, p.x0, mo);

  expect_bitwise_equal(mesh.x, shared.x);
  for (index_t it : mesh.iterations_per_agent) EXPECT_EQ(it, 25);
}

// --- a 1-agent asynchronous mesh is sequential Jacobi ---------------------

TEST(MeshEquiv, OneAgentAsyncIsSequentialJacobiZeroUlp) {
  for (const NamedMatrix& m : test_matrices()) {
    const auto p =
        gen::make_problem(m.name, m.a, testing::test_seed(/*salt=*/14));
    SCOPED_TRACE(::testing::Message()
                 << m.name << " seed " << testing::test_seed(14));
    runtime::SharedOptions so;
    so.num_threads = 1;
    so.synchronous = false;
    so.tolerance = 0.0;
    so.max_iterations = 40;
    so.record_history = false;
    so.final_polish = false;
    so.kernel = runtime::KernelKind::kReference;
    const auto shared = runtime::solve_shared(p.a, p.b, p.x0, so);

    MeshOptions mo;
    mo.num_agents = 1;
    mo.synchronous = false;
    mo.tolerance = 0.0;
    mo.max_iterations = 40;
    mo.record_history = false;
    mo.final_polish = false;
    const auto mesh = solve_mesh(p.a, p.b, p.x0, mo);

    expect_bitwise_equal(mesh.x, shared.x);
    EXPECT_EQ(mesh.messages_sent, 0);
    EXPECT_EQ(mesh.messages_received, 0);
  }
}

// --- recorded synchronous traces replay through the Phi(l) model ----------

TEST(MeshEquiv, SynchronousTraceReplaysBitwise) {
  const auto p = gen::make_problem("fd16", gen::fd_laplacian_2d(16, 16),
                                   testing::test_seed(/*salt=*/15));
  MeshOptions mo;
  mo.num_agents = 4;
  mo.synchronous = true;
  mo.tolerance = 0.0;
  mo.max_iterations = 12;
  mo.record_history = false;
  mo.record_trace = true;
  mo.final_polish = false;
  const auto mesh = solve_mesh(p.a, p.b, p.x0, mo);
  ASSERT_TRUE(mesh.trace.has_value());

  const auto analysis = model::analyze_trace(*mesh.trace);
  // Lockstep: every relaxation reads exactly the pre-step state, so the
  // whole trace is propagated and collapses to max_iterations steps.
  EXPECT_EQ(analysis.orphaned, 0);
  EXPECT_DOUBLE_EQ(analysis.fraction, 1.0);
  EXPECT_EQ(analysis.parallel_steps, 12);
  EXPECT_EQ(analysis.total_relaxations, 12 * p.a.num_rows());

  model::ExecutorOptions eo;
  eo.tolerance = 0.0;
  const auto replay = model::replay_trace(p.a, p.b, p.x0, *mesh.trace, eo);
#ifdef NDEBUG
  expect_bitwise_equal(mesh.x, replay.result.x);
#else
  for (std::size_t i = 0; i < mesh.x.size(); ++i) {
    EXPECT_NEAR(mesh.x[i], replay.result.x[i],
                1e-14 * (1.0 + std::abs(mesh.x[i])));
  }
#endif
}

// An asynchronous traced run is not bitwise-replayable in general (stale
// reads make the model see newer values), but the trace must still be
// structurally sound: analyzable with nothing orphaned.
TEST(MeshEquiv, AsyncTraceIsAnalyzable) {
  const auto p = gen::make_problem("fd12", gen::fd_laplacian_2d(12, 12),
                                   testing::test_seed(/*salt=*/16));
  MeshOptions mo;
  mo.num_agents = 4;
  mo.synchronous = false;
  mo.tolerance = 0.0;
  mo.max_iterations = 10;
  mo.record_history = false;
  mo.record_trace = true;
  mo.final_polish = false;
  mo.yield = true;
  const auto mesh = solve_mesh(p.a, p.b, p.x0, mo);
  ASSERT_TRUE(mesh.trace.has_value());
  const auto analysis = model::analyze_trace(*mesh.trace);
  EXPECT_EQ(analysis.orphaned, 0);
  EXPECT_EQ(analysis.total_relaxations, 10 * p.a.num_rows());
  EXPECT_GT(analysis.fraction, 0.0);
}

// --- ownership shapes: overlap and non-contiguity -------------------------

RowSets overlapping_sets(index_t num_rows, index_t num_agents,
                         index_t overlap) {
  RowSets base = contiguous_row_sets(num_rows, num_agents);
  RowSets out;
  out.owned.resize(base.owned.size());
  for (std::size_t t = 0; t < base.owned.size(); ++t) {
    std::vector<index_t>& rows = out.owned[t];
    rows = base.owned[t];
    // Extend `overlap` rows into each neighboring block.
    const index_t lo = rows.front();
    const index_t hi = rows.back();
    for (index_t k = 1; k <= overlap; ++k) {
      if (lo - k >= 0) rows.insert(rows.begin(), lo - k);
      if (hi + k < num_rows) rows.push_back(hi + k);
    }
  }
  return out;
}

TEST(MeshEquiv, OverlappingOwnershipMatchesDisjointSolve) {
  const auto p = gen::make_problem("fd16", gen::fd_laplacian_2d(16, 16),
                                   testing::test_seed(/*salt=*/17));
  const double tol = 1e-10;

  MeshOptions disjoint_opts;
  disjoint_opts.num_agents = 4;
  disjoint_opts.synchronous = true;
  disjoint_opts.tolerance = tol;
  disjoint_opts.max_iterations = 20000;
  disjoint_opts.record_history = false;
  const auto disjoint_run = solve_mesh(p.a, p.b, p.x0, disjoint_opts);
  ASSERT_TRUE(disjoint_run.converged);

  for (const bool synchronous : {true, false}) {
    SCOPED_TRACE(::testing::Message() << "synchronous=" << synchronous);
    MeshOptions mo;
    mo.num_agents = 4;
    mo.synchronous = synchronous;
    mo.tolerance = tol;
    mo.max_iterations = 20000;
    mo.record_history = false;
    // Real threads on a possibly oversubscribed test host: yield turns
    // the scheduler's long time slices into fine-grained round-robin, so
    // ghost updates propagate every iteration instead of once per
    // preemption (same knob as the shared runtime's trace experiments).
    mo.yield = !synchronous;
    mo.row_sets = overlapping_sets(p.a.num_rows(), 4, /*overlap=*/3);
    const auto overlap_run = solve_mesh(p.a, p.b, p.x0, mo);
    EXPECT_TRUE(overlap_run.converged);
    EXPECT_LE(overlap_run.final_rel_residual_1, tol);
    // Both runs stop at a verified residual <= tol; for this
    // well-conditioned matrix the iterates then agree far tighter than
    // the residual bound requires.
    EXPECT_LE(max_abs_diff(overlap_run.x, disjoint_run.x), 1e-6);
  }
}

TEST(MeshEquiv, NonContiguousRoundRobinOwnershipConverges) {
  const auto p = gen::make_problem("fd12", gen::fd_laplacian_2d(12, 12),
                                   testing::test_seed(/*salt=*/18));
  const index_t n = p.a.num_rows();
  RowSets rr;
  rr.owned.resize(4);
  for (index_t i = 0; i < n; ++i) {
    rr.owned[static_cast<std::size_t>(i % 4)].push_back(i);
  }
  for (const bool synchronous : {true, false}) {
    SCOPED_TRACE(::testing::Message() << "synchronous=" << synchronous);
    MeshOptions mo;
    mo.num_agents = 4;
    mo.synchronous = synchronous;
    mo.tolerance = 1e-8;
    mo.max_iterations = 20000;
    mo.record_history = false;
    mo.yield = !synchronous;  // oversubscription-safe, see overlap test
    mo.row_sets = rr;
    const auto run = solve_mesh(p.a, p.b, p.x0, mo);
    EXPECT_TRUE(run.converged);
    EXPECT_LE(run.final_rel_residual_1, 1e-8);
    EXPECT_LE(testing::apply_diff_inf(p.a, run.x, p.b), 1e-6);
  }
}

// --- the asynchronous mesh brackets the simulator's prediction ------------

// The simulator predicts how many local iterations asynchronous Jacobi
// needs on this partition; the real mesh runs the same protocol on real
// threads. Scheduling noise moves the count, but not by orders of
// magnitude: the mesh must converge within a generous factor of the
// prediction (wider under ThreadSanitizer, whose serialization skews
// schedules heavily). tools/check_mesh_convergence.py gates the same
// invariant on the benchmark fleet with a tighter documented factor.
TEST(MeshEquiv, AsyncIterationsBracketDistsimPrediction) {
#if defined(__SANITIZE_THREAD__)
  const double factor = 16.0;
#else
  const double factor = 6.0;
#endif
  const auto p = gen::make_problem("fd24", gen::fd_laplacian_2d(24, 24),
                                   testing::test_seed(/*salt=*/19));
  const index_t agents = 4;
  const double tol = 1e-8;

  distsim::DistOptions dopts;
  dopts.num_processes = agents;
  dopts.synchronous = false;
  dopts.tolerance = tol;
  dopts.max_iterations = 100000;
  const auto part = partition::contiguous_partition(p.a.num_rows(), agents);
  const auto dist = distsim::solve_distributed(p.a, p.b, p.x0, part, dopts);
  ASSERT_TRUE(dist.reached_tolerance);
  index_t dist_iters = 0;
  for (index_t it : dist.iterations_per_process) {
    dist_iters = std::max(dist_iters, it);
  }
  ASSERT_GT(dist_iters, 0);

  MeshOptions mo;
  mo.num_agents = agents;
  mo.synchronous = false;
  mo.tolerance = tol;
  mo.max_iterations =
      static_cast<index_t>(factor * static_cast<double>(dist_iters)) + 100;
  mo.record_history = false;
  // Fine-grained round-robin on oversubscribed hosts: without it a
  // 1-core machine lets each agent burn a whole scheduling quantum on
  // frozen ghosts and the iteration count measures the OS, not Jacobi.
  mo.yield = true;
  const auto mesh = solve_mesh(p.a, p.b, p.x0, mo);
  EXPECT_TRUE(mesh.converged);
  EXPECT_LE(mesh.final_rel_residual_1, tol);
  index_t mesh_iters = 0;
  for (index_t it : mesh.iterations_per_agent) {
    mesh_iters = std::max(mesh_iters, it);
  }
  EXPECT_LE(static_cast<double>(mesh_iters),
            factor * static_cast<double>(dist_iters))
      << "mesh " << mesh_iters << " vs distsim " << dist_iters;
}

// History points carry agent-local racy observations; the serial final
// residual is the trustworthy number and must be consistent with them.
TEST(MeshEquiv, HistoryIsTimeOrderedAndConsistent) {
  const auto p = gen::make_problem("fd12", gen::fd_laplacian_2d(12, 12),
                                   testing::test_seed(/*salt=*/20));
  MeshOptions mo;
  mo.num_agents = 3;
  mo.synchronous = false;
  mo.tolerance = 1e-8;
  mo.max_iterations = 20000;
  mo.record_history = true;
  mo.yield = true;  // oversubscription-safe, see overlap test
  const auto run = solve_mesh(p.a, p.b, p.x0, mo);
  ASSERT_TRUE(run.converged);
  ASSERT_FALSE(run.history.empty());
  for (std::size_t k = 1; k < run.history.size(); ++k) {
    EXPECT_LE(run.history[k - 1].seconds, run.history[k].seconds);
  }
  for (const MeshHistoryPoint& pt : run.history) {
    EXPECT_GE(pt.agent, 0);
    EXPECT_LT(pt.agent, 3);
    EXPECT_GE(pt.rel_residual_1, 0.0);
    EXPECT_TRUE(std::isfinite(pt.rel_residual_1));
  }
}

}  // namespace
}  // namespace ajac::mesh
