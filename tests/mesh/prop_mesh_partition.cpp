// Property suite for mesh row-ownership sets and the derived topology.
//
// ~200 seeded random ownership shapes (varying agent counts, overlap
// fractions, contiguous / scattered layouts) are pushed through validate
// + build_topology and checked against brute-force recomputation:
//
//   - ghost columns are EXACTLY the off-owned columns of an agent's rows;
//   - the union of an agent's inbound edge row lists is exactly its ghost
//     set restricted to owned columns of some sender (with coverage, all
//     of it), with no edge carrying a row the receiver doesn't read;
//   - disjoint() agrees with a brute-force owner count;
//   - degenerate shapes (no agents, empty agent, out-of-range rows,
//     unsorted / duplicate rows, uncovered rows) are rejected up front by
//     validate with std::logic_error, not discovered mid-solve;
//   - full overlap (every agent owns every row) means nobody reads a
//     ghost: no edges, and the solve still converges;
//   - a subset of shapes runs a real solve on a small path matrix to
//     prove arbitrary valid ownership converges end to end.
//
// Failures print the case seed: rerun with AJAC_TEST_SEED=<n> to
// reproduce a specific draw.

#include "ajac/mesh/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "ajac/mesh/mesh_jacobi.hpp"
#include "ajac/mesh/row_sets.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac::mesh {
namespace {

/// Random valid ownership: every row gets a home agent, then each
/// (agent, row) pair additionally joins with probability `overlap_p`
/// (overlap) and rows may be scattered (non-contiguous by construction).
RowSets random_row_sets(Rng& rng, index_t num_rows, index_t num_agents,
                        double overlap_p) {
  RowSets sets;
  sets.owned.resize(static_cast<std::size_t>(num_agents));
  for (index_t i = 0; i < num_rows; ++i) {
    const auto home =
        static_cast<std::size_t>(rng.uniform_index(
            static_cast<std::uint64_t>(num_agents)));
    for (std::size_t t = 0; t < sets.owned.size(); ++t) {
      if (t == home || rng.uniform() < overlap_p) {
        sets.owned[t].push_back(i);
      }
    }
  }
  // An agent can come up empty under an unlucky draw; give it one row so
  // the shape is valid (empty agents are a *rejection* case, tested
  // separately).
  for (std::size_t t = 0; t < sets.owned.size(); ++t) {
    if (sets.owned[t].empty()) {
      const auto i = static_cast<index_t>(
          rng.uniform_index(static_cast<std::uint64_t>(num_rows)));
      sets.owned[t].push_back(i);
    }
  }
  return sets;
}

/// Brute-force ghost set: all columns referenced by the agent's rows that
/// the agent does not own.
std::vector<index_t> brute_force_ghosts(const CsrMatrix& a,
                                        const std::vector<index_t>& owned) {
  const std::set<index_t> mine(owned.begin(), owned.end());
  std::set<index_t> ghosts;
  for (const index_t i : owned) {
    for (const index_t j : a.row_cols(i)) {
      if (mine.count(j) == 0) ghosts.insert(j);
    }
  }
  return {ghosts.begin(), ghosts.end()};
}

TEST(PropMeshPartition, GhostsAndEdgesMatchBruteForce) {
  const std::uint64_t seed = testing::test_seed(/*salt=*/210);
  Rng rng(seed);
  for (int c = 0; c < 120; ++c) {
    SCOPED_TRACE(::testing::Message() << "case " << c << " seed " << seed);
    const index_t n = 4 + static_cast<index_t>(rng.uniform_index(60));
    const index_t agents =
        1 + static_cast<index_t>(
                rng.uniform_index(static_cast<std::uint64_t>(
                    std::min<index_t>(n, 6))));
    const double overlap_p = rng.uniform() < 0.5 ? 0.0 : 0.25 * rng.uniform();
    const CsrMatrix a = testing::unit_diag_path(n, 0.45);
    const RowSets sets = random_row_sets(rng, n, agents, overlap_p);
    ASSERT_NO_THROW(validate(sets, n));
    const MeshTopology topo = build_topology(a, sets);
    ASSERT_EQ(topo.num_agents(), agents);
    ASSERT_EQ(topo.num_rows, n);

    // disjoint() == brute-force owner count.
    std::vector<int> owners(static_cast<std::size_t>(n), 0);
    for (const auto& rows : sets.owned) {
      for (const index_t i : rows) ++owners[static_cast<std::size_t>(i)];
    }
    const bool brute_disjoint =
        std::all_of(owners.begin(), owners.end(),
                    [](int k) { return k == 1; });
    EXPECT_EQ(topo.disjoint, brute_disjoint);
    EXPECT_EQ(disjoint(sets, n), brute_disjoint);

    for (index_t t = 0; t < agents; ++t) {
      const AgentBlock& blk = topo.agents[static_cast<std::size_t>(t)];
      EXPECT_EQ(blk.rows, sets.owned[static_cast<std::size_t>(t)]);

      // Property 1: ghosts are exactly the off-owned stencil columns.
      EXPECT_EQ(blk.ghost_cols, brute_force_ghosts(a, blk.rows));

      // Property 2: inbound edges tile the ghost set. Every edge row is
      // a ghost the receiver reads and a row the sender owns; the union
      // over inbound edges covers every ghost (coverage guarantees each
      // ghost has at least one owner).
      const std::set<index_t> ghosts(blk.ghost_cols.begin(),
                                     blk.ghost_cols.end());
      std::set<index_t> from_edges;
      for (const index_t e : blk.in_edges) {
        const MeshEdge& edge = topo.edges[static_cast<std::size_t>(e)];
        EXPECT_EQ(edge.receiver, t);
        EXPECT_TRUE(std::is_sorted(edge.rows.begin(), edge.rows.end()));
        EXPECT_FALSE(edge.rows.empty());
        const auto& sender_rows =
            sets.owned[static_cast<std::size_t>(edge.sender)];
        for (const index_t row : edge.rows) {
          EXPECT_TRUE(ghosts.count(row) != 0)
              << "edge " << edge.sender << "->" << t
              << " carries non-ghost row " << row;
          EXPECT_TRUE(std::binary_search(sender_rows.begin(),
                                         sender_rows.end(), row))
              << "edge " << edge.sender << "->" << t
              << " carries row " << row << " the sender does not own";
          from_edges.insert(row);
        }
      }
      EXPECT_EQ(from_edges, ghosts);

      // in/out edge lists are consistent views of the same edge table.
      for (const index_t e : blk.out_edges) {
        EXPECT_EQ(topo.edges[static_cast<std::size_t>(e)].sender, t);
      }
    }
  }
}

TEST(PropMeshPartition, MalformedShapesAreRejectedUpFront) {
  const index_t n = 12;
  const CsrMatrix a = testing::unit_diag_path(n, 0.4);

  // No agents at all.
  EXPECT_THROW(validate(RowSets{}, n), std::logic_error);

  // An empty agent (would deadlock the synchronous barrier schedule).
  {
    RowSets s = contiguous_row_sets(n, 3);
    s.owned[1].clear();
    EXPECT_THROW(validate(s, n), std::logic_error);
    EXPECT_THROW(static_cast<void>(build_topology(a, s)), std::logic_error);
  }
  // Out-of-range row.
  {
    RowSets s = contiguous_row_sets(n, 3);
    s.owned[2].push_back(n);
    EXPECT_THROW(validate(s, n), std::logic_error);
  }
  {
    RowSets s = contiguous_row_sets(n, 3);
    s.owned[0].insert(s.owned[0].begin(), -1);
    EXPECT_THROW(validate(s, n), std::logic_error);
  }
  // Unsorted and duplicate rows.
  {
    RowSets s = contiguous_row_sets(n, 3);
    std::swap(s.owned[0][0], s.owned[0][1]);
    EXPECT_THROW(validate(s, n), std::logic_error);
  }
  {
    RowSets s = contiguous_row_sets(n, 3);
    s.owned[0].push_back(s.owned[0].back());
    EXPECT_THROW(validate(s, n), std::logic_error);
  }
  // Coverage hole: row without an owner.
  {
    RowSets s = contiguous_row_sets(n, 3);
    s.owned[1].erase(s.owned[1].begin());
    EXPECT_THROW(validate(s, n), std::logic_error);
  }
  // The solve rejects them too (same validate runs before any thread).
  {
    RowSets s = contiguous_row_sets(n, 3);
    s.owned[1].clear();
    MeshOptions mo;
    mo.num_agents = 3;
    mo.row_sets = s;
    const Vector b(static_cast<std::size_t>(n), 1.0);
    const Vector x0(static_cast<std::size_t>(n), 0.0);
    EXPECT_THROW(static_cast<void>(solve_mesh(a, b, x0, mo)),
                 std::logic_error);
  }
}

TEST(PropMeshPartition, DegenerateValidShapes) {
  const index_t n = 10;
  const CsrMatrix a = testing::unit_diag_path(n, 0.4);
  const Vector b(static_cast<std::size_t>(n), 1.0);
  const Vector x0(static_cast<std::size_t>(n), 0.0);

  // Single agent owning everything: no edges, plain sequential Jacobi.
  {
    const RowSets s = contiguous_row_sets(n, 1);
    const MeshTopology topo = build_topology(a, s);
    EXPECT_TRUE(topo.edges.empty());
    EXPECT_TRUE(topo.agents[0].ghost_cols.empty());
  }
  // One row per agent: maximal communication.
  {
    const RowSets s = contiguous_row_sets(n, n);
    ASSERT_NO_THROW(validate(s, n));
    const MeshTopology topo = build_topology(a, s);
    // Path stencil: interior agents read both neighbors.
    EXPECT_EQ(topo.agents[static_cast<std::size_t>(n / 2)].ghost_cols.size(),
              2u);
    MeshOptions mo;
    mo.num_agents = n;
    mo.row_sets = s;
    mo.synchronous = true;
    mo.tolerance = 1e-10;
    mo.max_iterations = 5000;
    mo.record_history = false;
    const auto run = solve_mesh(a, b, x0, mo);
    EXPECT_TRUE(run.converged);
  }
  // Full overlap: every agent owns every row, so nobody reads a ghost
  // and the topology has no edges; the solve is num_agents redundant
  // sequential iterations that agree bitwise on the board.
  {
    RowSets s;
    s.owned.resize(3);
    for (auto& rows : s.owned) {
      rows.resize(static_cast<std::size_t>(n));
      for (index_t i = 0; i < n; ++i) rows[static_cast<std::size_t>(i)] = i;
    }
    ASSERT_NO_THROW(validate(s, n));
    EXPECT_FALSE(disjoint(s, n));
    const MeshTopology topo = build_topology(a, s);
    EXPECT_TRUE(topo.edges.empty());
    for (const AgentBlock& blk : topo.agents) {
      EXPECT_TRUE(blk.ghost_cols.empty());
    }
    MeshOptions mo;
    mo.num_agents = 3;
    mo.row_sets = s;
    mo.synchronous = true;
    mo.tolerance = 1e-10;
    mo.max_iterations = 5000;
    mo.record_history = false;
    const auto run = solve_mesh(a, b, x0, mo);
    EXPECT_TRUE(run.converged);
    EXPECT_EQ(run.messages_sent, 0);
  }
}

// Default layout matches the shared runtime's contiguous partition.
TEST(PropMeshPartition, ContiguousSetsMirrorPartition) {
  for (const index_t n : {1, 7, 16, 33}) {
    for (const index_t agents : {1, 2, 3, 5}) {
      if (agents > n) continue;
      SCOPED_TRACE(::testing::Message() << "n=" << n << " agents=" << agents);
      const RowSets s = contiguous_row_sets(n, agents);
      ASSERT_NO_THROW(validate(s, n));
      EXPECT_TRUE(disjoint(s, n));
      const auto part = partition::contiguous_partition(n, agents);
      const RowSets from_part = row_sets_from_partition(part);
      ASSERT_EQ(from_part.num_agents(), s.num_agents());
      for (index_t t = 0; t < agents; ++t) {
        EXPECT_EQ(from_part.owned[static_cast<std::size_t>(t)],
                  s.owned[static_cast<std::size_t>(t)]);
      }
    }
  }
}

// End-to-end: a sample of random valid shapes must actually solve. Kept
// to a subset of draws (synchronous, tiny matrix) so the property suite
// stays fast.
TEST(PropMeshPartition, RandomShapesSolveEndToEnd) {
  const std::uint64_t seed = testing::test_seed(/*salt=*/211);
  Rng rng(seed);
  const index_t n = 24;
  const CsrMatrix a = testing::unit_diag_path(n, 0.45);
  const Vector b(static_cast<std::size_t>(n), 1.0);
  const Vector x0(static_cast<std::size_t>(n), 0.0);
  for (int c = 0; c < 40; ++c) {
    SCOPED_TRACE(::testing::Message() << "case " << c << " seed " << seed);
    const index_t agents = 1 + static_cast<index_t>(rng.uniform_index(4));
    const double overlap_p = 0.3 * rng.uniform();
    const RowSets sets = random_row_sets(rng, n, agents, overlap_p);
    MeshOptions mo;
    mo.num_agents = agents;
    mo.row_sets = sets;
    mo.synchronous = true;
    mo.tolerance = 1e-9;
    mo.max_iterations = 4000;
    mo.record_history = false;
    const auto run = solve_mesh(a, b, x0, mo);
    EXPECT_TRUE(run.converged);
    EXPECT_LE(testing::apply_diff_inf(a, run.x, b), 1e-7);
  }
}

}  // namespace
}  // namespace ajac::mesh
