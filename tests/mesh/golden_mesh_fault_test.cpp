// Golden regression tests for faulty mesh executions: committed
// relaxation traces recorded from the real concurrent mesh under fault
// injection replay through analyze_trace + the model executor, and the
// reconstructed residual history must match the committed values digit
// for digit (Release builds compare bitwise; debug builds allow last-ulp
// slack). The committed fault logs double as the determinism contract:
// fault decisions are keyed on logical coordinates only, so a fresh run
// of the same plan — on any scheduler, any machine — must reproduce the
// canonicalized log exactly.
//
// The traces themselves are scheduling-dependent (that is the point of a
// real concurrent runtime), so they are recorded once and committed; the
// replay of a committed trace is deterministic. Both golden cases use
// pure-delay faults (a straggler window; a crash WITHOUT state reset), so
// the recorded read-versions describe a genuine undamped Jacobi execution
// and Phi(l) replays it cleanly.
//
// To regenerate after an *intentional* change:
//
//   AJAC_REGEN_GOLDEN=1 ./ajac_test_mesh --gtest_filter='MeshGoldenFault.*'
//
// which rewrites the mesh_* files under tests/model/golden/ in the source
// tree (the test still asserts afterwards, so a regen run is
// self-checking). Commit the diff deliberately.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/mesh/mesh_jacobi.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac::mesh {
namespace {

// Fixed on purpose: goldens pin one exact execution, AJAC_TEST_SEED must
// not move them. Same problem as the model goldens (fd16 at seed 4242),
// distinct file prefix.
constexpr std::uint64_t kGoldenSeed = 4242;

gen::LinearProblem golden_problem() {
  return gen::make_problem("fd16", gen::fd_laplacian_2d(16, 16), kGoldenSeed);
}

std::string golden_path(const std::string& name) {
  return std::string(AJAC_GOLDEN_DIR) + "/" + name;
}

bool regen_requested() {
  const char* env = std::getenv("AJAC_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with AJAC_REGEN_GOLDEN=1)";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
  out << content;
}

/// %.17g round-trips doubles exactly, so the history file is bit-stable.
std::string format_history(const model::TraceReplay& replay) {
  char buf[64];
  std::string out;
  out += "steps " + std::to_string(replay.analysis.parallel_steps);
  out +=
      " propagated " + std::to_string(replay.analysis.propagated_relaxations);
  out += " total " + std::to_string(replay.analysis.total_relaxations);
  out += " orphaned " + std::to_string(replay.analysis.orphaned);
  out += "\n";
  for (const model::HistoryPoint& pt : replay.result.history) {
    std::snprintf(buf, sizeof(buf), "%.17g\n", pt.rel_residual_1);
    out += buf;
  }
  return out;
}

std::shared_ptr<fault::FaultPlan> straggler_plan() {
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = kGoldenSeed;
  fault::StragglerSpec spec;
  spec.actor = 1;
  spec.extra_delay_us = 50.0;
  spec.period = 4;
  spec.duty = 0.5;
  plan->stragglers.push_back(spec);
  return plan;
}

std::shared_ptr<fault::FaultPlan> crash_plan() {
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = kGoldenSeed;
  fault::CrashSpec crash;
  crash.actor = 2;
  crash.crash_iteration = 4;
  crash.dead_seconds = 2e-4;
  crash.reset_state_on_recovery = false;  // pure delay: trace stays Jacobi
  plan->crashes.push_back(crash);
  // Deterministic per-edge message faults ride along: their decisions are
  // part of the committed log.
  fault::MessageFaultSpec msg;
  msg.drop_probability = 0.1;
  msg.duplicate_probability = 0.1;
  plan->message_faults.push_back(msg);
  return plan;
}

MeshResult run_mesh(const std::shared_ptr<fault::FaultPlan>& plan,
                    index_t agents, index_t iterations, bool record_trace) {
  const auto p = golden_problem();
  MeshOptions mo;
  mo.num_agents = agents;
  mo.synchronous = false;
  mo.tolerance = 0.0;  // exact iteration counts: the log is schedule-free
  mo.max_iterations = iterations;
  mo.record_history = false;
  mo.record_trace = record_trace;
  mo.final_polish = false;
  mo.yield = true;
  mo.fault_plan = plan;
  return solve_mesh(p.a, p.b, p.x0, mo);
}

void run_case(const std::string& name,
              const std::shared_ptr<fault::FaultPlan>& plan, index_t agents,
              index_t iterations) {
  const std::string trace_file = golden_path(name + "_trace.json");
  const std::string history_file = golden_path(name + "_history.txt");
  const std::string faults_file = golden_path(name + "_faults.txt");
  const auto p = golden_problem();
  model::ExecutorOptions eo;
  eo.tolerance = 0.0;

  if (regen_requested()) {
    const MeshResult rec = run_mesh(plan, agents, iterations, true);
    ASSERT_TRUE(rec.trace.has_value());
    write_file(trace_file, model::to_json(*rec.trace) + "\n");
    const auto replay = model::replay_trace(p.a, p.b, p.x0, *rec.trace, eo);
    write_file(history_file, format_history(replay));
    write_file(faults_file, fault::to_json(rec.fault_events) + "\n");
  }

  // 1) The committed trace replays to the committed history.
  const model::RelaxationTrace trace =
      model::trace_from_json(read_file(trace_file));
  ASSERT_EQ(trace.num_rows(), p.a.num_rows());
  const auto replay = model::replay_trace(p.a, p.b, p.x0, trace, eo);

  std::istringstream golden(read_file(history_file));
  std::string key;
  index_t steps = 0;
  index_t propagated = 0;
  index_t total = 0;
  index_t orphaned = 0;
  golden >> key >> steps;
  ASSERT_EQ(key, "steps");
  golden >> key >> propagated;
  ASSERT_EQ(key, "propagated");
  golden >> key >> total;
  ASSERT_EQ(key, "total");
  golden >> key >> orphaned;
  ASSERT_EQ(key, "orphaned");
  EXPECT_EQ(replay.analysis.parallel_steps, steps);
  EXPECT_EQ(replay.analysis.propagated_relaxations, propagated);
  EXPECT_EQ(replay.analysis.total_relaxations, total);
  EXPECT_EQ(replay.analysis.orphaned, orphaned);
  // Every relaxation of a fixed-length run is in the trace.
  EXPECT_EQ(replay.analysis.total_relaxations,
            iterations * p.a.num_rows());

  std::vector<double> residuals;
  double value = 0.0;
  while (golden >> value) residuals.push_back(value);
  ASSERT_EQ(replay.result.history.size(), residuals.size());
  for (std::size_t k = 0; k < residuals.size(); ++k) {
#ifdef NDEBUG
    // Release: the committed history is bit-stable.
    EXPECT_EQ(replay.result.history[k].rel_residual_1, residuals[k])
        << "history point " << k;
#else
    EXPECT_NEAR(replay.result.history[k].rel_residual_1, residuals[k],
                1e-14 * (1.0 + residuals[k]))
        << "history point " << k;
#endif
  }

  // 2) A fresh concurrent run reproduces the committed fault log exactly:
  // decisions are functions of (seed, agent, iteration, per-edge counter),
  // never of scheduling. The log arrives canonicalized.
  const MeshResult fresh = run_mesh(plan, agents, iterations, false);
  EXPECT_EQ(fault::to_json(fresh.fault_events) + "\n",
            read_file(faults_file));
  for (index_t it : fresh.iterations_per_agent) EXPECT_EQ(it, iterations);

  // 3) And a second run agrees with the first in every decision total.
  const MeshResult again = run_mesh(plan, agents, iterations, false);
  EXPECT_EQ(fault::to_json(again.fault_events),
            fault::to_json(fresh.fault_events));
  EXPECT_EQ(again.messages_dropped, fresh.messages_dropped);
  EXPECT_EQ(again.messages_duplicated, fresh.messages_duplicated);
}

TEST(MeshGoldenFault, StragglerFourAgents) {
  run_case("mesh_straggler_p4", straggler_plan(), 4, 8);
}

TEST(MeshGoldenFault, CrashRecoverFourAgents) {
  run_case("mesh_crash_p4", crash_plan(), 4, 8);
}

}  // namespace
}  // namespace ajac::mesh
