// Concurrency stress harness for the mesh runtime (designed to run under
// ThreadSanitizer: `cmake --preset tsan && ctest --preset tsan`).
//
// The SPSC ring's correctness claim is that a popped packet is exactly
// one pushed packet: the plain payload slots are published solely by the
// release/acquire hand-off on the index atomics, so a torn or reordered
// read would surface as a payload inconsistent with its header. The
// harness makes the claim checkable by encoding the (slot, header)
// identity into every value of a packet — any mixing of two packets, or
// a read overlapping a producer's in-place refill, decodes to a mismatch
// and fails loudly. FIFO order (strictly increasing headers on one edge)
// is asserted at the same time.
//
// The solve-level tests run the full asynchronous mesh — fault plans
// active — under the sanitizer, and pin the determinism contract: two
// runs of the same plan at tolerance 0 produce identical canonicalized
// fault logs, identical traffic decisions, and identical per-agent
// iteration counts, regardless of scheduling.
//
// Intensity is tunable via AJAC_STRESS_ITERS (packets per producer).

#include "ajac/mesh/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/mesh/mesh_jacobi.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac::mesh {
namespace {

index_t stress_iters(index_t dflt) {
  if (const char* env = std::getenv("AJAC_STRESS_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<index_t>(std::min(v, 1000000L));
  }
  return dflt;
}

/// Value carried in slot k of the packet with header h: decodable and
/// exactly representable in a double for all stress sizes.
double encode(index_t header, std::size_t k) {
  return static_cast<double>(header * 64 + static_cast<index_t>(k));
}

void maybe_yield(Rng& rng) {
  if (rng.uniform_index(64) == 0) std::this_thread::yield();
}

TEST(StressMesh, QueueHandOffNeverTearsOrReorders) {
  constexpr std::size_t kWidth = 7;
  constexpr std::size_t kCapacity = 4;  // tiny ring: constant wrap + reuse
  const index_t kPackets = stress_iters(20000);

  SpscQueue q(kWidth, kCapacity);
  std::vector<index_t> popped_headers;
  popped_headers.reserve(static_cast<std::size_t>(kPackets));

  std::thread producer([&] {
    q.producer.assert_held();
    Rng rng(testing::test_seed(/*salt=*/31));
    std::vector<double> payload(kWidth);
    for (index_t h = 0; h < kPackets; ++h) {
      for (std::size_t k = 0; k < kWidth; ++k) payload[k] = encode(h, k);
      // Spin until accepted: the stress wants every packet observed, so
      // backpressure becomes a retry instead of a drop.
      while (!q.try_push(h, payload)) std::this_thread::yield();
      maybe_yield(rng);
    }
  });

  std::thread consumer([&] {
    q.consumer.assert_held();
    Rng rng(testing::test_seed(/*salt=*/32));
    std::vector<double> buf(kWidth);
    while (static_cast<index_t>(popped_headers.size()) < kPackets) {
      index_t header = 0;
      if (!q.try_pop(header, buf)) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t k = 0; k < kWidth; ++k) {
        // A torn read, or payload from a different packet than the
        // header claims, decodes to the wrong (header, slot) pair.
        ASSERT_EQ(buf[k], encode(header, k))
            << "packet " << header << " slot " << k;
      }
      popped_headers.push_back(header);
      maybe_yield(rng);
    }
  });

  producer.join();
  consumer.join();

  // FIFO on one edge: every packet arrives, in send order.
  ASSERT_EQ(static_cast<index_t>(popped_headers.size()), kPackets);
  for (std::size_t k = 0; k < popped_headers.size(); ++k) {
    ASSERT_EQ(popped_headers[k], static_cast<index_t>(k));
  }
}

// Drop-newest backpressure in a single-threaded setting: exact, countable
// behavior of the full ring.
TEST(StressMesh, FullRingRefusesNewestAndRecovers) {
  SpscQueue q(/*width=*/2, /*capacity=*/3);
  q.producer.assert_held();
  q.consumer.assert_held();
  const std::vector<double> payload{1.0, 2.0};
  EXPECT_TRUE(q.try_push(0, payload));
  EXPECT_TRUE(q.try_push(1, payload));
  EXPECT_TRUE(q.try_push(2, payload));
  EXPECT_FALSE(q.try_push(3, payload));  // full: newest refused

  index_t header = -1;
  std::vector<double> buf(2);
  EXPECT_TRUE(q.try_pop(header, buf));
  EXPECT_EQ(header, 0);  // oldest survives; the refused packet is gone
  EXPECT_TRUE(q.try_push(4, payload));  // capacity freed
  EXPECT_TRUE(q.try_pop(header, buf));
  EXPECT_EQ(header, 1);
  EXPECT_TRUE(q.try_pop(header, buf));
  EXPECT_EQ(header, 2);
  EXPECT_TRUE(q.try_pop(header, buf));
  EXPECT_EQ(header, 4);
  EXPECT_FALSE(q.try_pop(header, buf));
}

std::shared_ptr<fault::FaultPlan> stress_plan(std::uint64_t seed) {
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = seed;
  fault::StragglerSpec straggler;
  straggler.actor = 1;
  straggler.extra_delay_us = 30.0;
  straggler.period = 8;
  straggler.duty = 0.5;
  plan->stragglers.push_back(straggler);
  fault::StaleReadSpec stale;
  stale.actor = 2;
  stale.period = 16;
  stale.duty = 0.25;
  plan->stale_reads.push_back(stale);
  fault::MessageFaultSpec msg;
  msg.drop_probability = 0.05;
  msg.duplicate_probability = 0.05;
  plan->message_faults.push_back(msg);
  fault::CrashSpec crash;
  crash.actor = 0;
  crash.crash_iteration = 12;
  crash.dead_seconds = 2e-4;
  crash.reset_state_on_recovery = true;
  plan->crashes.push_back(crash);
  return plan;
}

// The whole asynchronous machine — queues, boards, flags, fault hooks —
// racing under the sanitizer, with every fault family active at once.
TEST(StressMesh, AsyncSolveWithFaultsRunsRaceFree) {
  const auto p = gen::make_problem("fd10", gen::fd_laplacian_2d(10, 10),
                                   testing::test_seed(/*salt=*/33));
  MeshOptions mo;
  mo.num_agents = 4;
  mo.synchronous = false;
  mo.tolerance = 0.0;  // fixed-length run: every agent does exactly the cap
  mo.max_iterations = stress_iters(64);
  mo.queue_capacity = 4;  // force constant wrap-around and backpressure
  mo.record_history = false;
  mo.yield = true;
  mo.fault_plan = stress_plan(testing::test_seed(/*salt=*/34));
  const auto run = solve_mesh(p.a, p.b, p.x0, mo);
  for (index_t it : run.iterations_per_agent) {
    EXPECT_EQ(it, mo.max_iterations);
  }
  EXPECT_GT(run.messages_sent, 0);
  EXPECT_GT(run.messages_received, 0);
  EXPECT_FALSE(run.fault_events.empty());
}

// Determinism: fault decisions are keyed on logical coordinates (agent,
// iteration, per-edge counter), never on scheduling, so two runs of the
// same plan at tolerance 0 must agree exactly — canonicalized logs,
// drop/duplicate totals, per-agent iteration counts.
TEST(StressMesh, SameSeedSamePlanGivesIdenticalFaultLogs) {
  const auto p = gen::make_problem("fd10", gen::fd_laplacian_2d(10, 10),
                                   testing::test_seed(/*salt=*/35));
  auto run_once = [&] {
    MeshOptions mo;
    mo.num_agents = 4;
    mo.synchronous = false;
    mo.tolerance = 0.0;
    mo.max_iterations = 48;
    mo.record_history = false;
    mo.yield = true;
    mo.fault_plan = stress_plan(testing::test_seed(/*salt=*/36));
    return solve_mesh(p.a, p.b, p.x0, mo);
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.fault_events.size(), second.fault_events.size());
  for (std::size_t k = 0; k < first.fault_events.size(); ++k) {
    EXPECT_TRUE(first.fault_events[k] == second.fault_events[k])
        << "fault event " << k << " differs between runs";
  }
  EXPECT_EQ(fault::to_json(first.fault_events),
            fault::to_json(second.fault_events));
  EXPECT_EQ(first.messages_dropped, second.messages_dropped);
  EXPECT_EQ(first.messages_duplicated, second.messages_duplicated);
  EXPECT_EQ(first.iterations_per_agent, second.iterations_per_agent);
  // Sent counts are decision-determined too: every iteration publishes
  // each out-edge exactly once minus dropped plus duplicated.
  EXPECT_EQ(first.messages_sent, second.messages_sent);
}

// Synchronous lockstep under the sanitizer: barriers + queues + boards.
TEST(StressMesh, SyncSolveRunsRaceFree) {
  const auto p = gen::make_problem("fd10", gen::fd_laplacian_2d(10, 10),
                                   testing::test_seed(/*salt=*/37));
  MeshOptions mo;
  mo.num_agents = 4;
  mo.synchronous = true;
  mo.tolerance = 1e-8;
  mo.max_iterations = 2000;
  mo.record_history = true;
  const auto run = solve_mesh(p.a, p.b, p.x0, mo);
  EXPECT_TRUE(run.converged);
}

}  // namespace
}  // namespace ajac::mesh
