#include "ajac/gen/fd.hpp"

#include <gtest/gtest.h>

#include "ajac/eig/lanczos.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/properties.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

TEST(FdLaplacian, OneDimensionalStencil) {
  const CsrMatrix a = gen::fd_laplacian_1d(4);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 3), 0.0);
}

TEST(FdLaplacian, TwoDimensionalStencil) {
  const CsrMatrix a = gen::fd_laplacian_2d(3, 3);
  EXPECT_DOUBLE_EQ(a.at(4, 4), 4.0);  // center
  EXPECT_DOUBLE_EQ(a.at(4, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 3), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 5), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 7), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 8), 0.0);  // no wraparound
}

TEST(FdLaplacian, ThreeDimensionalStencil) {
  const CsrMatrix a = gen::fd_laplacian_3d(3, 3, 3);
  const index_t center = 13;  // (1,1,1)
  EXPECT_DOUBLE_EQ(a.at(center, center), 6.0);
  EXPECT_EQ(a.row_nnz(center), 7);
}

TEST(FdLaplacian, StructuralInvariants) {
  for (const CsrMatrix& a :
       {gen::fd_laplacian_2d(5, 7), gen::fd_laplacian_3d(3, 4, 5)}) {
    EXPECT_TRUE(a.is_symmetric());
    EXPECT_TRUE(a.has_sorted_rows());
    EXPECT_TRUE(a.has_full_diagonal());
    EXPECT_TRUE(is_weakly_diag_dominant(a));
    EXPECT_TRUE(is_irreducible(a));
  }
}

TEST(FdLaplacian, JacobiSpectralRadiusMatchesClosedForm) {
  const index_t nx = 4, ny = 17;
  const double rho = eig::jacobi_spectral_radius_spd(gen::fd_laplacian_2d(nx, ny));
  EXPECT_NEAR(rho, testing::fd2d_jacobi_rho(nx, ny), 1e-8);
}

TEST(FdLaplacian, NonzeroCountFormula) {
  const index_t nx = 6, ny = 9;
  const CsrMatrix a = gen::fd_laplacian_2d(nx, ny);
  const index_t edges = (nx - 1) * ny + nx * (ny - 1);
  EXPECT_EQ(a.num_nonzeros(), nx * ny + 2 * edges);
}

TEST(FdVarCoef, ConstantCoefficientReducesToLaplacian) {
  // c == 1 reproduces the 5-point Laplacian exactly.
  const CsrMatrix a = gen::fd_varcoef_2d(4, 5, [](double, double) { return 1.0; });
  EXPECT_TRUE(a == gen::fd_laplacian_2d(4, 5));
}

TEST(FdVarCoef, StaysSpdLikeAndWdd) {
  const CsrMatrix a = gen::fd_varcoef_2d(6, 6, [](double x, double y) {
    return 1.0 + 10.0 * x + 5.0 * y;
  });
  EXPECT_TRUE(a.is_symmetric(1e-12));
  EXPECT_TRUE(is_weakly_diag_dominant(a));
  // Strict dominance on every row thanks to the boundary stubs.
  EXPECT_TRUE(is_irreducible(a));
}

TEST(FdVarCoef, RejectsNonPositiveCoefficient) {
  EXPECT_THROW(
      gen::fd_varcoef_2d(3, 3, [](double, double) { return 0.0; }),
      std::logic_error);
}

TEST(FdVarCoef, ThreeDConstantMatchesLaplacian) {
  const CsrMatrix a =
      gen::fd_varcoef_3d(3, 3, 3, [](double, double, double) { return 1.0; });
  EXPECT_TRUE(a == gen::fd_laplacian_3d(3, 3, 3));
}

TEST(FdRandomBlocks, DeterministicForFixedSeed) {
  Rng rng1(5);
  Rng rng2(5);
  const CsrMatrix a = gen::fd_random_blocks_2d(8, 8, 2, 2, 100.0, rng1);
  const CsrMatrix b = gen::fd_random_blocks_2d(8, 8, 2, 2, 100.0, rng2);
  EXPECT_TRUE(a == b);
}

TEST(FdRandomBlocks, PropertiesSurviveContrast) {
  Rng rng(5);
  const CsrMatrix a = gen::fd_random_blocks_2d(10, 10, 4, 4, 1000.0, rng);
  EXPECT_TRUE(a.is_symmetric(1e-10));
  EXPECT_TRUE(is_weakly_diag_dominant(a));
  Rng rng3(5);
  const CsrMatrix c = gen::fd_random_blocks_3d(5, 5, 5, 2, 50.0, rng3);
  EXPECT_TRUE(c.is_symmetric(1e-10));
  EXPECT_TRUE(is_weakly_diag_dominant(c));
}

}  // namespace
}  // namespace ajac
