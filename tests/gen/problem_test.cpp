#include "ajac/gen/problem.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/properties.hpp"

namespace ajac {
namespace {

TEST(Problem, ScalesToUnitDiagonal) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(5, 5), 1);
  EXPECT_TRUE(has_unit_diagonal(p.a, 1e-14));
  EXPECT_EQ(p.name, "fd");
}

TEST(Problem, RandomDataInRange) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(8, 8), 2);
  ASSERT_EQ(p.b.size(), 64u);
  ASSERT_EQ(p.x0.size(), 64u);
  for (double v : p.b) {
    ASSERT_GE(v, -1.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Problem, SeedControlsData) {
  const auto p1 = gen::make_problem("fd", gen::fd_laplacian_2d(4, 4), 5);
  const auto p2 = gen::make_problem("fd", gen::fd_laplacian_2d(4, 4), 5);
  const auto p3 = gen::make_problem("fd", gen::fd_laplacian_2d(4, 4), 6);
  EXPECT_EQ(p1.b, p2.b);
  EXPECT_EQ(p1.x0, p2.x0);
  EXPECT_NE(p1.b, p3.b);
}

TEST(Problem, RejectsNonSquare) {
  const CsrMatrix rect(2, 3, {0, 1, 2}, {0, 1}, {1.0, 1.0});
  EXPECT_THROW(gen::make_problem("bad", rect, 1), std::logic_error);
}

}  // namespace
}  // namespace ajac
