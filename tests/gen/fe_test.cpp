#include "ajac/gen/fe.hpp"

#include <gtest/gtest.h>

#include "ajac/eig/lanczos.hpp"
#include "ajac/eig/operators.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/properties.hpp"
#include "ajac/sparse/scaling.hpp"

namespace ajac {
namespace {

TEST(FeLaplacian, RegularMeshMatchesFivePointPattern) {
  // Zero jitter, zero shear, alternating diagonals: the assembled matrix is
  // the classic P1 criss-cross stiffness; on a uniform right-triangle mesh
  // every interior entry matches the 5-point FD Laplacian.
  gen::FeMeshOptions opts;
  opts.nx = 4;
  opts.ny = 4;
  opts.jitter = 0.0;
  opts.shear = 0.0;
  opts.random_diagonals = false;
  const CsrMatrix a = gen::fe_laplacian_2d(opts);
  EXPECT_EQ(a.num_rows(), 16);
  EXPECT_TRUE(a.is_symmetric(1e-12));
  // Uniform unit-square mesh: stiffness diagonal is 4, cross neighbors -1.
  EXPECT_NEAR(a.at(5, 5), 4.0, 1e-12);
  EXPECT_NEAR(a.at(5, 6), -1.0, 1e-12);
  EXPECT_NEAR(a.at(5, 9), -1.0, 1e-12);
}

TEST(FeLaplacian, SpdOnDistortedMesh) {
  const CsrMatrix a = gen::paper_fe_3081();
  EXPECT_TRUE(a.is_symmetric(1e-10));
  EXPECT_TRUE(a.has_full_diagonal());
  // SPD <=> all eigenvalues of the scaled matrix positive.
  const CsrMatrix s = scale_to_unit_diagonal(a);
  const auto lr = eig::lanczos_extreme(eig::make_operator(s));
  EXPECT_GT(lr.lambda_min, 0.0);
}

TEST(FeLaplacian, PaperMatrixDimensions) {
  const CsrMatrix a = gen::paper_fe_3081();
  EXPECT_EQ(a.num_rows(), 3081);
  // Paper: 20,971 nonzeros; the analogue is within ~1%.
  EXPECT_NEAR(static_cast<double>(a.num_nonzeros()), 20971.0, 500.0);
}

TEST(FeLaplacian, PaperMatrixDivergesForJacobi) {
  // Sec. VII-A: "The matrix is not W.D.D., ... and rho(G) > 1."
  const CsrMatrix s = scale_to_unit_diagonal(gen::paper_fe_3081());
  EXPECT_FALSE(is_weakly_diag_dominant(s));
  const auto lr = eig::lanczos_extreme(eig::make_operator(s));
  const double rho = std::max(std::abs(1.0 - lr.lambda_min),
                              std::abs(1.0 - lr.lambda_max));
  EXPECT_GT(rho, 1.0);
  EXPECT_LT(rho, 1.6);
}

TEST(FeLaplacian, AboutHalfTheRowsAreWdd) {
  const CsrMatrix s = scale_to_unit_diagonal(gen::paper_fe_3081());
  const double f = wdd_fraction(s);
  EXPECT_GT(f, 0.35);
  EXPECT_LT(f, 0.6);
}

TEST(FeLaplacian, DeterministicForFixedSeed) {
  gen::FeMeshOptions opts;
  opts.nx = 10;
  opts.ny = 10;
  opts.seed = 77;
  EXPECT_TRUE(gen::fe_laplacian_2d(opts) == gen::fe_laplacian_2d(opts));
}

TEST(FeLaplacian, JitterNeverInvertsTriangles) {
  // Extreme jitter exercises the untangling pass; assembly throws on an
  // inverted triangle, so constructing the matrix is itself the check.
  gen::FeMeshOptions opts;
  opts.nx = 30;
  opts.ny = 30;
  opts.jitter = 0.49;
  opts.jitter_fraction = 1.0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    opts.seed = seed;
    EXPECT_NO_THROW({
      const CsrMatrix a = gen::fe_laplacian_2d(opts);
      EXPECT_TRUE(a.is_symmetric(1e-10));
    });
  }
}

TEST(FeLaplacian, ShearProducesPositiveOffdiagonals) {
  gen::FeMeshOptions opts;
  opts.nx = 8;
  opts.ny = 8;
  opts.jitter = 0.0;
  opts.shear = 1.0;
  opts.random_diagonals = false;
  const CsrMatrix a = gen::fe_laplacian_2d(opts);
  index_t positive_offdiag = 0;
  for (index_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != i && vals[k] > 1e-12) ++positive_offdiag;
    }
  }
  EXPECT_GT(positive_offdiag, 0);
}

TEST(FeLaplacian, Dubcova2AnalogueHasExactSize) {
  // Full-size generation is exercised in the bench; here a reduced scale
  // checks the sizing rule (scale^2 interior unknowns).
  const CsrMatrix a = gen::dubcova2_analogue(31);
  EXPECT_EQ(a.num_rows(), 31 * 31);
}

TEST(FeLaplacian, RowSumsNearZeroForInteriorRows) {
  // Stiffness row sums vanish for rows with no boundary neighbor.
  gen::FeMeshOptions opts;
  opts.nx = 12;
  opts.ny = 12;
  opts.seed = 3;
  const CsrMatrix a = gen::fe_laplacian_2d(opts);
  index_t interior_checked = 0;
  for (index_t j = 1; j + 1 < opts.ny - 0; ++j) {
    for (index_t i = 1; i + 1 < opts.nx - 0; ++i) {
      const index_t row = j * opts.nx + i;
      // Rows adjacent to the Dirichlet boundary lose entries; skip them.
      if (i <= 1 || j <= 1 || i + 2 >= opts.nx || j + 2 >= opts.ny) continue;
      double sum = 0.0;
      for (double v : a.row_values(row)) sum += v;
      EXPECT_NEAR(sum, 0.0, 1e-10);
      ++interior_checked;
    }
  }
  EXPECT_GT(interior_checked, 0);
}

}  // namespace
}  // namespace ajac
