#include "ajac/gen/analogues.hpp"

#include <gtest/gtest.h>

#include "ajac/eig/lanczos.hpp"
#include "ajac/eig/operators.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/properties.hpp"
#include "ajac/sparse/scaling.hpp"

namespace ajac {
namespace {

TEST(Analogues, CatalogueMatchesTable1) {
  const auto& cat = gen::table1_catalogue();
  ASSERT_EQ(cat.size(), 7u);
  EXPECT_EQ(cat[0].name, "thermal2");
  EXPECT_EQ(cat[0].paper_equations, 1227087);
  EXPECT_EQ(cat[0].paper_nonzeros, 8579355);
  EXPECT_EQ(cat[6].name, "Dubcova2");
  EXPECT_FALSE(cat[6].jacobi_converges);
  for (std::size_t i = 0; i + 1 < cat.size(); ++i) {
    // Table I is ordered by decreasing nonzero count.
    EXPECT_GT(cat[i].paper_nonzeros, cat[i + 1].paper_nonzeros);
  }
}

TEST(Analogues, UnknownNameThrows) {
  EXPECT_THROW(gen::make_analogue("not_a_matrix"), std::invalid_argument);
}

TEST(Analogues, AllGenerateSymmetricWithPositiveDiagonal) {
  for (const auto& info : gen::table1_catalogue()) {
    // Reduced scale keeps this test fast while exercising every code path.
    const CsrMatrix a = gen::make_analogue(info.name, 0.02);
    EXPECT_GT(a.num_rows(), 0) << info.name;
    EXPECT_TRUE(a.is_symmetric(1e-9)) << info.name;
    EXPECT_TRUE(a.has_full_diagonal()) << info.name;
    for (double d : a.diagonal()) ASSERT_GT(d, 0.0) << info.name;
  }
}

TEST(Analogues, JacobiConvergenceClassificationHolds) {
  // rho(G) < 1 exactly for the matrices Table I marks Jacobi-convergent.
  for (const auto& info : gen::table1_catalogue()) {
    const CsrMatrix a = gen::make_analogue(info.name, 0.05);
    const double rho = eig::jacobi_spectral_radius_spd(a);
    if (info.jacobi_converges) {
      EXPECT_LT(rho, 1.0) << info.name << " rho=" << rho;
    } else {
      EXPECT_GT(rho, 1.0) << info.name << " rho=" << rho;
    }
  }
}

TEST(Analogues, ScaleGrowsProblemSize) {
  const CsrMatrix small = gen::make_analogue("ecology2", 0.01);
  const CsrMatrix larger = gen::make_analogue("ecology2", 0.04);
  EXPECT_GT(larger.num_rows(), small.num_rows());
}

TEST(Analogues, DeterministicForFixedSeed) {
  const CsrMatrix a = gen::make_analogue("G3_circuit", 0.02, 9);
  const CsrMatrix b = gen::make_analogue("G3_circuit", 0.02, 9);
  EXPECT_TRUE(a == b);
}

TEST(Analogues, MakeTable1ProblemsRespectsSkipDivergent) {
  const auto all = gen::make_table1_problems(0.01);
  const auto conv = gen::make_table1_problems(0.01, 7, /*skip_divergent=*/true);
  EXPECT_EQ(all.size(), 7u);
  EXPECT_EQ(conv.size(), 6u);
  for (const auto& p : conv) EXPECT_NE(p.name, "Dubcova2");
}

TEST(Analogues, ProblemsAreUnitDiagonalWithBoundedData) {
  for (const auto& p : gen::make_table1_problems(0.01)) {
    EXPECT_TRUE(has_unit_diagonal(p.a, 1e-12)) << p.name;
    for (double v : p.b) {
      ASSERT_GE(v, -1.0);
      ASSERT_LT(v, 1.0);
    }
    for (double v : p.x0) {
      ASSERT_GE(v, -1.0);
      ASSERT_LT(v, 1.0);
    }
  }
}

TEST(Analogues, CirtcuitGraphIsConnectedAndNonsingularShifted) {
  const CsrMatrix a = gen::make_analogue("G3_circuit", 0.03);
  EXPECT_TRUE(is_irreducible(a));
  // Grounding shifts make it SPD: lambda_min of scaled matrix > 0.
  const CsrMatrix s = scale_to_unit_diagonal(a);
  const auto lr = eig::lanczos_extreme(eig::make_operator(s));
  EXPECT_GT(lr.lambda_min, 0.0);
}

}  // namespace
}  // namespace ajac
