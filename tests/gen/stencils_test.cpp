#include <gtest/gtest.h>

#include <cmath>

#include "ajac/eig/lanczos.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/properties.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::gen {
namespace {

TEST(NinePoint, StencilCounts) {
  const CsrMatrix a = fd_laplacian_2d_9pt(4, 5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 8.0);
  EXPECT_EQ(a.row_nnz(0), 4);       // corner: self + 3 neighbors
  const index_t center = 1 * 4 + 1; // interior of a 4x5 grid
  EXPECT_EQ(a.row_nnz(center), 9);
  EXPECT_DOUBLE_EQ(a.at(center, center - 5), -1.0);  // diagonal neighbor
}

TEST(NinePoint, SymmetricAndWdd) {
  const CsrMatrix a = fd_laplacian_2d_9pt(7, 6);
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_TRUE(is_weakly_diag_dominant(a));
  EXPECT_TRUE(is_irreducible(a));
  EXPECT_LT(eig::jacobi_spectral_radius_spd(a), 1.0);
}

TEST(Anisotropic, ReducesToIsotropicAtEpsOne) {
  EXPECT_TRUE(fd_anisotropic_2d(5, 6, 1.0) == fd_laplacian_2d(5, 6));
}

TEST(Anisotropic, JacobiSlowsWithAnisotropy) {
  // On a SQUARE grid rho(G) = (eps cos + cos)/(eps+1) is independent of
  // eps, so use a rectangle: weakening x on a coarse-x/fine-y grid drives
  // rho toward cos(pi/(ny+1)), close to 1.
  const double rho_iso = eig::jacobi_spectral_radius_spd(
      fd_anisotropic_2d(4, 40, 1.0));
  const double rho_aniso = eig::jacobi_spectral_radius_spd(
      fd_anisotropic_2d(4, 40, 0.01));
  EXPECT_GT(rho_aniso, rho_iso);
  EXPECT_LT(rho_aniso, 1.0);  // still W.D.D., still convergent
  EXPECT_NEAR(rho_aniso, std::cos(M_PI / 41.0), 0.01);
}

TEST(Anisotropic, StaysWddForAllEps) {
  for (double eps : {0.001, 0.1, 10.0}) {
    EXPECT_TRUE(is_weakly_diag_dominant(fd_anisotropic_2d(6, 6, eps)));
  }
}

class RandomWdd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWdd, SatisfiesAllStructuralContracts) {
  Rng rng(GetParam());
  const CsrMatrix a = random_wdd_matrix(64, 96, rng);
  EXPECT_TRUE(a.is_symmetric(1e-12));
  EXPECT_TRUE(a.has_full_diagonal());
  EXPECT_TRUE(is_weakly_diag_dominant(a));
  EXPECT_TRUE(is_irreducible(a));
  // Nonsingular: Jacobi converges (rho(G) < 1 for irreducibly dominant
  // matrices with at least one strictly dominant row).
  EXPECT_LT(eig::jacobi_spectral_radius_spd(a), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWdd,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(RandomWddDeterminism, SameSeedSameMatrix) {
  Rng r1(42);
  Rng r2(42);
  EXPECT_TRUE(random_wdd_matrix(30, 40, r1) == random_wdd_matrix(30, 40, r2));
}

}  // namespace
}  // namespace ajac::gen
