#include "ajac/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "ajac/obs/json.hpp"

namespace ajac::obs {
namespace {

TEST(ObsRegistry, ResetSizesAndClears) {
  MetricsRegistry reg;
  reg.reset(3);
  reg.actor(0).add(Counter::kRelaxations, 10);
  reg.actor(2).record(Hist::kReadStaleness, 4);
  reg.reset(2);
  EXPECT_EQ(reg.num_actors(), 2);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.totals[static_cast<std::size_t>(Counter::kRelaxations)], 0u);
  EXPECT_EQ(
      snap.histograms[static_cast<std::size_t>(Hist::kReadStaleness)].count(),
      0u);
}

TEST(ObsRegistry, SnapshotMergesPerActorTotals) {
  MetricsRegistry reg;
  reg.reset(4);
  for (index_t t = 0; t < 4; ++t) {
    reg.actor(t).add(Counter::kIterations, static_cast<std::uint64_t>(t + 1));
  }
  const MetricsSnapshot snap = reg.snapshot();
  const auto c = static_cast<std::size_t>(Counter::kIterations);
  EXPECT_EQ(snap.totals[c], 1u + 2u + 3u + 4u);
  ASSERT_EQ(snap.per_actor.size(), 4u);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(snap.per_actor[t][c], t + 1);
  }
}

TEST(ObsRegistry, ConcurrentRecordMergesToSerialSum) {
  // Each worker writes only its own slot, so concurrent recording followed
  // by a post-join snapshot must equal the serial sum exactly. Run under
  // the tsan preset this also proves the single-writer contract is
  // race-free (suite name matches the preset's ^Obs filter).
  constexpr index_t kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 20000;
  MetricsRegistry reg;
  reg.reset(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (index_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      ActorSlot& slot = reg.actor(t);
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        slot.add(Counter::kRelaxations);
        slot.add(Counter::kSeqlockRetries, 2);
        slot.record(Hist::kReadStaleness, i % 9);
        slot.record(Hist::kIterationUs, (i % 5) + 1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const MetricsSnapshot snap = reg.snapshot();
  const auto relax = static_cast<std::size_t>(Counter::kRelaxations);
  const auto retries = static_cast<std::size_t>(Counter::kSeqlockRetries);
  EXPECT_EQ(snap.totals[relax], kThreads * kOpsPerThread);
  EXPECT_EQ(snap.totals[retries], kThreads * kOpsPerThread * 2);
  for (const auto& actor : snap.per_actor) {
    EXPECT_EQ(actor[relax], kOpsPerThread);
  }

  // Serial reference for the histograms.
  Histogram stale_ref;
  Histogram iter_ref;
  for (index_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
      stale_ref.record(i % 9);
      iter_ref.record((i % 5) + 1);
    }
  }
  const Histogram& stale =
      snap.histograms[static_cast<std::size_t>(Hist::kReadStaleness)];
  const Histogram& iter =
      snap.histograms[static_cast<std::size_t>(Hist::kIterationUs)];
  EXPECT_EQ(stale.count(), stale_ref.count());
  EXPECT_EQ(stale.sum(), stale_ref.sum());
  EXPECT_EQ(iter.sum(), iter_ref.sum());
  for (std::size_t k = 0; k < Histogram::kNumBuckets; ++k) {
    EXPECT_EQ(stale.bucket_count(k), stale_ref.bucket_count(k)) << "k=" << k;
  }
}

TEST(ObsRegistry, TimelineCapCountsDroppedEvents) {
  MetricsConfig cfg;
  cfg.max_events_per_actor = 8;
  MetricsRegistry reg(cfg);
  reg.reset(1);
  for (int i = 0; i < 20; ++i) {
    reg.actor(0).instant(TraceKind::kFlagRaise, static_cast<double>(i));
  }
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.trace_events, 8u);
  EXPECT_EQ(snap.dropped_trace_events, 12u);
}

TEST(ObsRegistry, TimelineDisabledRecordsNothing) {
  MetricsConfig cfg;
  cfg.timeline = false;
  MetricsRegistry reg(cfg);
  reg.reset(2);
  reg.actor(1).span(TraceKind::kIteration, 0.0, 5.0);
  reg.actor(1).instant(TraceKind::kStop, 1.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.trace_events, 0u);
  EXPECT_EQ(snap.dropped_trace_events, 0u);
}

TEST(ObsRegistry, ToJsonIsParseableAndComplete) {
  MetricsRegistry reg;
  reg.set_actor_kind("rank");
  reg.reset(2);
  reg.actor(0).add(Counter::kMessagesSent, 5);
  reg.actor(1).add(Counter::kMessagesSent, 7);
  reg.actor(1).add(Counter::kPolicyDraws, 3);
  reg.actor(0).record(Hist::kMessageLatencyUs, 120);
  const std::string text =
      to_json(reg.snapshot(), {{"matrix", "fd-8x8"}, {"threads", "2"}});

  const JsonValue doc = parse_json(text);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema_version")->number, kMetricsSchemaVersion);
  EXPECT_EQ(doc.find("kind")->string, "ajac-metrics-snapshot");
  EXPECT_EQ(doc.find("metadata")->find("matrix")->string, "fd-8x8");
  EXPECT_EQ(doc.find("num_actors")->number, 2.0);

  // Every counter and histogram name appears, even unused ones.
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->object.size(), kNumCounters);
  const JsonValue* sent = counters->find("messages_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_EQ(sent->find("total")->number, 12.0);
  ASSERT_EQ(sent->find("per_actor")->array.size(), 2u);
  EXPECT_EQ(sent->find("per_actor")->array[1].number, 7.0);

  // Schema v2 added the policy_draws counter: pin the version and the
  // exported name so a rename or version slip is caught here rather than
  // by downstream trend tooling (the bench reports embed both).
  EXPECT_EQ(kMetricsSchemaVersion, 2);
  const JsonValue* draws = counters->find("policy_draws");
  ASSERT_NE(draws, nullptr);
  EXPECT_EQ(draws->find("total")->number, 3.0);
  EXPECT_EQ(draws->find("per_actor")->array[1].number, 3.0);

  const JsonValue* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_EQ(hists->object.size(), kNumHists);
  const JsonValue* lat = hists->find("message_latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->number, 1.0);
  EXPECT_EQ(lat->find("max")->number, 120.0);
  ASSERT_EQ(lat->find("buckets")->array.size(), 1u);  // sparse: one bucket
  EXPECT_EQ(lat->find("buckets")->array[0].array[2].number, 1.0);
}

}  // namespace
}  // namespace ajac::obs
