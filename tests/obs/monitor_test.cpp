// ConvergenceMonitor on synthetic beacon streams: detection latency of the
// straggler detector, its clean-run specificity, exactness of the rho-hat /
// ETA regression on geometric decay, the cross-actor drain watermark, and
// the NDJSON stream contract. Everything here is deterministic — beacons
// are published directly into the hub's rings with hand-picked timestamps
// and the monitor is driven by poll_now()/flush(), never a drainer thread.

#include "ajac/obs/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ajac/obs/json.hpp"
#include "ajac/obs/stream.hpp"

namespace ajac::obs {
namespace {

void publish(TelemetryHub& hub, index_t actor, double ts_us,
             std::int64_t iteration, std::uint64_t relaxations,
             double own_residual = 1.0) {
  Beacon b;
  b.ts_us = ts_us;
  b.iteration = iteration;
  b.relaxations = relaxations;
  b.own_residual_1 = own_residual;
  EventRing& ring = hub.ring(actor);
  ring.writer.assert_held();
  ring.publish(b);
}

ConvergenceMonitor::Options fast_windows() {
  ConvergenceMonitor::Options o;
  o.window_us = 100.0;
  o.straggler_fraction = 0.25;
  o.straggler_windows = 3;
  return o;
}

TEST(TelemetryMonitor, StragglerDetectionLatencyIsBounded) {
  TelemetryOptions topts;
  topts.max_actors = 4;
  TelemetryHub hub(topts);
  hub.begin_run(4, "thread", 0.0, ResidualConvention::kOwnBlockSum, false);
  ConvergenceMonitor monitor(hub, fast_windows());

  // All four actors relax at 10 relaxations/us, one beacon every 10 us.
  // Actor 3 goes silent after ts = 500 (a crash or stall: its counters
  // freeze because nothing more is published). The detector should flag
  // it after straggler_windows = 3 judged windows of zero rate, i.e. at
  // the boundary 500 + 3 * 100 = 800, and never sooner.
  constexpr double kStallTs = 500.0;
  for (double ts = 10.0; ts <= 2000.0; ts += 10.0) {
    for (index_t a = 0; a < 4; ++a) {
      if (a == 3 && ts > kStallTs) continue;
      publish(hub, a, ts, static_cast<std::int64_t>(ts / 10.0),
              static_cast<std::uint64_t>(10.0 * ts));
    }
  }
  monitor.flush();

  const MonitorEstimates est = monitor.estimates();
  ASSERT_EQ(est.stragglers.size(), 1u);
  const StragglerFlag& flag = est.stragglers[0];
  EXPECT_EQ(flag.actor, 3);
  // Exact (the stream is deterministic): stall completes the [500, 600]
  // window empty, and windows ending 600, 700, 800 make the streak.
  EXPECT_EQ(flag.detected_ts_us, 800.0);
  // The general latency contract from the ISSUE: detection no earlier
  // than straggler_windows full windows after the stall, and no later
  // than (straggler_windows + 1) windows (the +1 is the quantization of
  // the stall instant to the next boundary).
  EXPECT_GE(flag.detected_ts_us, kStallTs + 3 * 100.0);
  EXPECT_LE(flag.detected_ts_us, kStallTs + 4 * 100.0);
  EXPECT_EQ(flag.rate, 0.0);
  EXPECT_NEAR(flag.median_rate, 10.0, 1e-12);
  // Latched once, not re-flagged every subsequent window.
  EXPECT_EQ(monitor.estimates().stragglers.size(), 1u);
}

TEST(TelemetryMonitor, NeverFlagsCleanRunWithRateJitter) {
  TelemetryOptions topts;
  topts.max_actors = 4;
  topts.ring_capacity = 512;  // whole per-actor stream fits: zero drops
  TelemetryHub hub(topts);
  hub.begin_run(4, "thread", 0.0, ResidualConvention::kOwnBlockSum, false);
  ConvergenceMonitor monitor(hub, fast_windows());

  // Heterogeneous but healthy: actor a publishes every (10 + a) us at 100
  // relaxations per beacon, so rates span 10.0 down to ~7.7 relax/us —
  // well above straggler_fraction (0.25) of the median. Every stream ends
  // with a final beacon at the common end time (as the solvers emit at
  // loop exit) so no actor's stream merely *ends* earlier than the rest.
  // poll_now() between the streams exercises incremental drains.
  constexpr double kEndTs = 2600.0;
  std::uint64_t published = 0;
  for (index_t a = 0; a < 4; ++a) {
    const double stride = 10.0 + static_cast<double>(a);
    int k = 1;
    for (; stride * k < kEndTs; ++k) {
      publish(hub, a, stride * k, k,
              static_cast<std::uint64_t>(100) * static_cast<std::uint64_t>(k));
      ++published;
    }
    publish(hub, a, kEndTs, k,
            static_cast<std::uint64_t>(100) * static_cast<std::uint64_t>(k));
    ++published;
    monitor.poll_now();
  }
  monitor.flush();

  const MonitorEstimates est = monitor.estimates();
  EXPECT_TRUE(est.stragglers.empty());
  EXPECT_EQ(est.beacons, published);
  EXPECT_EQ(est.dropped, 0u);
  EXPECT_EQ(est.actors_reporting, 4);
}

TEST(TelemetryMonitor, RhoHatAndEtaAreExactOnGeometricDecay) {
  constexpr double kRho = 0.9;
  constexpr double kScale = 4.0;
  constexpr double kTol = 1e-6;
  constexpr int kIters = 50;

  TelemetryOptions topts;
  topts.max_actors = 2;
  TelemetryHub hub(topts);
  hub.begin_run(2, "thread", kTol, ResidualConvention::kOwnBlockSum, false);
  hub.set_residual_scale(kScale);
  ConvergenceMonitor monitor(hub);

  // Lockstep synchronous run: both actors at iteration i at ts = 10 * i,
  // each holding half of a global residual kScale * kRho^i, so the
  // monitor's composed relative residual is exactly kRho^i and the
  // frontier points are exactly log-linear.
  for (int i = 1; i <= kIters; ++i) {
    const double r_half = 0.5 * kScale * std::pow(kRho, i);
    publish(hub, 0, 10.0 * i, i, static_cast<std::uint64_t>(i) * 100,
            r_half);
    publish(hub, 1, 10.0 * i, i, static_cast<std::uint64_t>(i) * 100,
            r_half);
  }
  monitor.flush();

  const MonitorEstimates est = monitor.estimates();
  EXPECT_NEAR(est.rho_hat, kRho, 1e-9);
  EXPECT_NEAR(est.global_rel_residual, std::pow(kRho, kIters),
              1e-12 * std::pow(kRho, kIters));
  EXPECT_EQ(est.iteration_min, kIters);
  EXPECT_EQ(est.iteration_max, kIters);
  EXPECT_EQ(est.iteration_imbalance, 0.0);

  // ETA from the time regression: slope is ln(kRho) per 10 us, remaining
  // decay is ln(kTol) - kIters * ln(kRho).
  const double slope_ts = std::log(kRho) / 10.0;
  const double expected_eta =
      (std::log(kTol) - kIters * std::log(kRho)) / slope_ts;
  ASSERT_GT(est.eta_us, 0.0);
  EXPECT_NEAR(est.eta_us, expected_eta, 1e-6 * expected_eta);
}

TEST(TelemetryMonitor, DrainSkewDoesNotFlagHealthyActor) {
  TelemetryOptions topts;
  topts.max_actors = 2;
  TelemetryHub hub(topts);
  hub.begin_run(2, "thread", 0.0, ResidualConvention::kOwnBlockSum, false);
  ConvergenceMonitor monitor(hub, fast_windows());

  // Both actors run at the same healthy rate, but the monitor drains
  // actor 1's ring 750 us of beacon time behind actor 0's (the realistic
  // shape: one poll lands between the two rings' publication batches).
  // The watermark must hold window judgement at actor 1's confirmed
  // time, so the skew never reads as a stall.
  for (double ts = 50.0; ts <= 1000.0; ts += 50.0) {
    publish(hub, 0, ts, static_cast<std::int64_t>(ts / 50.0),
            static_cast<std::uint64_t>(10.0 * ts));
  }
  for (double ts = 50.0; ts <= 250.0; ts += 50.0) {
    publish(hub, 1, ts, static_cast<std::int64_t>(ts / 50.0),
            static_cast<std::uint64_t>(10.0 * ts));
  }
  monitor.poll_now();

  MonitorEstimates est = monitor.estimates();
  EXPECT_TRUE(est.stragglers.empty());
  // Only beacons up to the watermark (actor 1's confirmed ts = 250) are
  // processed; actor 0's tail waits in the pending queue.
  EXPECT_EQ(est.ts_us, 250.0);
  EXPECT_EQ(est.beacons, 10u);

  // Actor 1 catches up; the next polls release the buffered tail and
  // still judge every window as healthy.
  for (double ts = 300.0; ts <= 1000.0; ts += 50.0) {
    publish(hub, 1, ts, static_cast<std::int64_t>(ts / 50.0),
            static_cast<std::uint64_t>(10.0 * ts));
  }
  monitor.flush();

  est = monitor.estimates();
  EXPECT_TRUE(est.stragglers.empty());
  EXPECT_EQ(est.ts_us, 1000.0);
  EXPECT_EQ(est.beacons, 40u);
  EXPECT_EQ(est.dropped, 0u);
}

TEST(TelemetryMonitor, BeginRunResetsEstimatesButKeepsCursors) {
  TelemetryOptions topts;
  topts.max_actors = 1;
  TelemetryHub hub(topts);
  ConvergenceMonitor monitor(hub);

  hub.begin_run(1, "thread", 0.0, ResidualConvention::kOwnBlockSum, false);
  for (int i = 1; i <= 7; ++i) {
    publish(hub, 0, 10.0 * i, i, static_cast<std::uint64_t>(i));
  }
  monitor.flush();
  EXPECT_EQ(monitor.estimates().beacons, 7u);
  EXPECT_EQ(monitor.estimates().run_generation, 1u);

  // Second run on the same hub: per-run estimates reset, and the ring
  // cursor carries over so none of the new beacons are misattributed or
  // double-counted.
  hub.begin_run(1, "thread", 0.0, ResidualConvention::kOwnBlockSum, false);
  for (int i = 1; i <= 3; ++i) {
    publish(hub, 0, 5.0 * i, i, static_cast<std::uint64_t>(i));
  }
  monitor.flush();
  const MonitorEstimates est = monitor.estimates();
  EXPECT_EQ(est.run_generation, 2u);
  EXPECT_EQ(est.beacons, 3u);
  EXPECT_EQ(est.dropped, 0u);
  EXPECT_EQ(est.ts_us, 15.0);
  EXPECT_TRUE(est.stragglers.empty());
}

TEST(TelemetryMonitor, RingOverwritesAreCountedAsDropped) {
  TelemetryOptions topts;
  topts.max_actors = 1;
  topts.ring_capacity = 4;
  TelemetryHub hub(topts);
  hub.begin_run(1, "thread", 0.0, ResidualConvention::kOwnBlockSum, false);
  ConvergenceMonitor monitor(hub);

  // 20 beacons into a 4-slot ring with no draining monitor: the oldest
  // 16 are overwritten. The cumulative counters make the survivors a
  // complete summary; the monitor must still account for the loss.
  for (int i = 1; i <= 20; ++i) {
    publish(hub, 0, 10.0 * i, i, static_cast<std::uint64_t>(i) * 100);
  }
  monitor.flush();

  const MonitorEstimates est = monitor.estimates();
  EXPECT_EQ(est.beacons, 4u);
  EXPECT_EQ(est.dropped, 16u);
  EXPECT_EQ(est.ts_us, 200.0);
  EXPECT_EQ(est.iteration_max, 20);
}

// ---------------------------------------------------------------------------
// NDJSON sink
// ---------------------------------------------------------------------------

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(TelemetryNdjson, EveryLineIsAParseableRecord) {
  TelemetryOptions topts;
  topts.max_actors = 2;
  TelemetryHub hub(topts);
  hub.begin_run(2, "thread", 1e-8, ResidualConvention::kOwnBlockSum, false);
  hub.set_residual_scale(2.0);
  ConvergenceMonitor monitor(hub);
  std::ostringstream out;
  NdjsonSink sink(out);
  monitor.add_sink(&sink);

  for (int i = 1; i <= 4; ++i) {
    publish(hub, 0, 10.0 * i, i, static_cast<std::uint64_t>(i) * 64, 0.5);
    publish(hub, 1, 10.0 * i, i, static_cast<std::uint64_t>(i) * 64, 0.5);
  }
  monitor.flush();

  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_FALSE(lines.empty());
  std::size_t beacon_lines = 0;
  std::size_t estimate_lines = 0;
  for (const std::string& line : lines) {
    const JsonValue doc = parse_json(line);
    ASSERT_TRUE(doc.is_object()) << line;
    const JsonValue* type = doc.find("type");
    ASSERT_NE(type, nullptr) << line;
    if (type->string == "beacon") {
      ++beacon_lines;
      const double actor = doc.find("actor")->number;
      EXPECT_TRUE(actor == 0.0 || actor == 1.0);
      EXPECT_GT(doc.find("ts_us")->number, 0.0);
      EXPECT_GE(doc.find("iteration")->number, 1.0);
      EXPECT_EQ(doc.find("relaxations")->number,
                doc.find("iteration")->number * 64.0);
      EXPECT_EQ(doc.find("own_residual_1")->number, 0.5);
    } else {
      ASSERT_EQ(type->string, "estimate") << line;
      ++estimate_lines;
      EXPECT_NE(doc.find("global_rel_residual"), nullptr);
      EXPECT_NE(doc.find("rho_hat"), nullptr);
      EXPECT_NE(doc.find("stragglers"), nullptr);
    }
  }
  EXPECT_EQ(beacon_lines, 8u);
  ASSERT_GE(estimate_lines, 1u);

  // The last estimate record reflects the fully drained run: a composed
  // relative residual of (0.5 + 0.5) / 2.0 and all beacons accounted.
  const JsonValue last = parse_json(lines.back());
  EXPECT_EQ(last.find("type")->string, "estimate");
  EXPECT_EQ(last.find("beacons")->number, 8.0);
  EXPECT_EQ(last.find("dropped")->number, 0.0);
  EXPECT_EQ(last.find("actors_reporting")->number, 2.0);
  EXPECT_EQ(last.find("global_rel_residual")->number, 0.5);
}

TEST(TelemetryNdjson, ZeroTimestampsMakesStreamsByteStable) {
  TelemetryOptions topts;
  topts.max_actors = 1;
  TelemetryHub hub(topts);
  ConvergenceMonitor monitor(hub);
  std::ostringstream out;
  NdjsonSink::Options sopts;
  sopts.zero_timestamps = true;
  NdjsonSink sink(out, sopts);
  monitor.add_sink(&sink);

  // Two "runs" with different wall-clock timestamps but identical logical
  // content must serialize identically.
  std::string first;
  for (int run = 0; run < 2; ++run) {
    out.str("");
    hub.begin_run(1, "thread", 1e-8, ResidualConvention::kOwnBlockSum,
                  false);
    const double ts_base = run == 0 ? 10.0 : 977.0;
    for (int i = 1; i <= 3; ++i) {
      publish(hub, 0, ts_base * i, i, static_cast<std::uint64_t>(i) * 8,
              1.0 / i);
    }
    monitor.flush();
    if (run == 0) {
      first = out.str();
    } else {
      EXPECT_EQ(out.str(), first);
    }
  }
  for (const std::string& line : lines_of(first)) {
    const JsonValue doc = parse_json(line);
    EXPECT_EQ(doc.find("ts_us")->number, 0.0) << line;
  }
}

}  // namespace
}  // namespace ajac::obs
