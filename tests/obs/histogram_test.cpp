#include "ajac/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace ajac::obs {
namespace {

TEST(ObsHistogram, BucketOfPowerOfTwoBoundaries) {
  // Bucket k is exactly the set of values with bit_width k: bucket 0 is
  // {0}, bucket k >= 1 is [2^(k-1), 2^k).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  for (std::size_t k = 1; k < 64; ++k) {
    const std::uint64_t lo = std::uint64_t{1} << (k - 1);
    const std::uint64_t hi = (std::uint64_t{1} << k) - 1;
    EXPECT_EQ(Histogram::bucket_of(lo), k) << "k=" << k;
    EXPECT_EQ(Histogram::bucket_of(hi), k) << "k=" << k;
    EXPECT_EQ(Histogram::bucket_of(hi + 1), k + 1) << "k=" << k;
  }
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(ObsHistogram, BucketLowHighRoundTrip) {
  // Every bucket's reported [low, high] range must map back onto itself.
  for (std::size_t k = 0; k < Histogram::kNumBuckets; ++k) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_low(k)), k) << "k=" << k;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_high(k)), k) << "k=" << k;
    EXPECT_LE(Histogram::bucket_low(k), Histogram::bucket_high(k));
  }
  EXPECT_EQ(Histogram::bucket_low(0), 0u);
  EXPECT_EQ(Histogram::bucket_high(0), 0u);
  EXPECT_EQ(Histogram::bucket_high(64), ~std::uint64_t{0});
}

TEST(ObsHistogram, EmptyHistogramIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);  // not the sentinel ~0
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(ObsHistogram, MinMaxSumTrackExtremes) {
  Histogram h;
  h.record(7);
  h.record(0);
  h.record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1007u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), 1007.0 / 3.0, 1e-12);
}

TEST(ObsHistogram, MaxUint64LandsInOverflowBucket) {
  Histogram h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_count(64), 1u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_EQ(h.percentile(1.0), ~std::uint64_t{0});
}

TEST(ObsHistogram, PercentileExactForPointMass) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(42);
  EXPECT_EQ(h.percentile(0.0), 42u);
  EXPECT_EQ(h.percentile(0.5), 42u);
  EXPECT_EQ(h.percentile(1.0), 42u);
}

TEST(ObsHistogram, PercentileClampedToObservedExtremes) {
  Histogram h;
  h.record(5);
  h.record(6);
  h.record(900);
  EXPECT_EQ(h.percentile(0.0), 5u);
  EXPECT_EQ(h.percentile(1.0), 900u);
  // The median lives in bucket 3 ([4,7]) and must stay within it.
  const std::uint64_t p50 = h.percentile(0.5);
  EXPECT_GE(p50, 5u);
  EXPECT_LE(p50, 7u);
}

TEST(ObsHistogram, MergeEqualsRecordingIntoOne) {
  Histogram a;
  Histogram b;
  Histogram both;
  for (std::uint64_t v : {0ull, 1ull, 3ull, 128ull}) {
    a.record(v);
    both.record(v);
  }
  for (std::uint64_t v : {2ull, 1ull << 40, 77ull}) {
    b.record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (std::size_t k = 0; k < Histogram::kNumBuckets; ++k) {
    EXPECT_EQ(a.bucket_count(k), both.bucket_count(k)) << "k=" << k;
  }
}

TEST(ObsHistogram, MergeEmptyIsIdentity) {
  Histogram a;
  a.record(9);
  const std::uint64_t before_min = a.min();
  a.merge(Histogram{});
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), before_min);
  EXPECT_EQ(a.max(), 9u);
}

}  // namespace
}  // namespace ajac::obs
