#include "ajac/obs/trace_sink.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "ajac/obs/json.hpp"

namespace ajac::obs {
namespace {

MetricsRegistry two_actor_registry() {
  MetricsRegistry reg;
  reg.set_actor_kind("thread");
  reg.reset(2);
  reg.actor(0).span(TraceKind::kIteration, 10.0, 25.0, /*arg0=*/3);
  reg.actor(0).instant(TraceKind::kFlagRaise, 25.0, /*arg0=*/3);
  reg.actor(1).span(TraceKind::kSolve, 0.0, 100.0);
  reg.actor(1).instant(TraceKind::kStop, 90.0);
  return reg;
}

/// Check one event object against the Chrome trace-event format: the
/// required members, their types, and the span/instant-specific fields.
void expect_valid_event(const JsonValue& e) {
  ASSERT_TRUE(e.is_object());
  ASSERT_NE(e.find("ph"), nullptr);
  const std::string& ph = e.find("ph")->string;
  ASSERT_NE(e.find("name"), nullptr);
  EXPECT_TRUE(e.find("name")->is_string());
  ASSERT_NE(e.find("pid"), nullptr);
  ASSERT_NE(e.find("tid"), nullptr);
  if (ph == "M") {
    EXPECT_TRUE(e.find("args")->find("name")->is_string());
    return;
  }
  ASSERT_NE(e.find("ts"), nullptr);
  EXPECT_TRUE(e.find("ts")->is_number());
  if (ph == "X") {
    ASSERT_NE(e.find("dur"), nullptr);
    EXPECT_GE(e.find("dur")->number, 0.0);
  } else if (ph == "i") {
    // Instants need a scope; we emit thread-scoped markers.
    ASSERT_NE(e.find("s"), nullptr);
    EXPECT_EQ(e.find("s")->string, "t");
  } else {
    FAIL() << "unexpected phase " << ph;
  }
}

TEST(ObsTraceSink, EmitsValidChromeTraceJson) {
  const MetricsRegistry reg = two_actor_registry();
  TraceEventSink sink;
  sink.add_registry(reg, "solve_shared");
  EXPECT_EQ(sink.num_events(), 4u);

  const JsonValue doc = parse_json(sink.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("displayTimeUnit")->string, "ms");
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 1 process_name + 2 thread_name metadata records + 4 events.
  ASSERT_EQ(events->array.size(), 7u);
  for (const JsonValue& e : events->array) expect_valid_event(e);
}

TEST(ObsTraceSink, MetadataNamesProcessAndLanes) {
  const MetricsRegistry reg = two_actor_registry();
  TraceEventSink sink;
  sink.add_registry(reg, "solve_shared");
  const JsonValue doc = parse_json(sink.to_json());

  std::set<std::string> meta_names;
  for (const JsonValue& e : doc.find("traceEvents")->array) {
    if (e.find("ph")->string == "M") {
      meta_names.insert(e.find("args")->find("name")->string);
    }
  }
  EXPECT_TRUE(meta_names.count("solve_shared"));
  EXPECT_TRUE(meta_names.count("thread 0"));
  EXPECT_TRUE(meta_names.count("thread 1"));
}

TEST(ObsTraceSink, SpanDurationAndArgsSurvive) {
  const MetricsRegistry reg = two_actor_registry();
  TraceEventSink sink;
  sink.add_registry(reg, "run");
  const JsonValue doc = parse_json(sink.to_json());

  bool found_iteration = false;
  for (const JsonValue& e : doc.find("traceEvents")->array) {
    if (e.find("name")->string != "iteration") continue;
    found_iteration = true;
    EXPECT_EQ(e.find("ph")->string, "X");
    EXPECT_DOUBLE_EQ(e.find("ts")->number, 10.0);
    EXPECT_DOUBLE_EQ(e.find("dur")->number, 15.0);
    EXPECT_EQ(e.find("args")->find("arg0")->number, 3.0);
    EXPECT_EQ(e.find("tid")->number, 0.0);
  }
  EXPECT_TRUE(found_iteration);
}

TEST(ObsTraceSink, MultipleRegistriesGetDistinctPids) {
  const MetricsRegistry a = two_actor_registry();
  MetricsRegistry b;
  b.set_actor_kind("rank");
  b.reset(1);
  b.actor(0).instant(TraceKind::kDetection, 1.0);

  TraceEventSink sink;
  sink.add_registry(a, "shared");
  sink.add_registry(b, "distsim");
  const JsonValue doc = parse_json(sink.to_json());

  std::set<double> pids;
  for (const JsonValue& e : doc.find("traceEvents")->array) {
    pids.insert(e.find("pid")->number);
  }
  EXPECT_EQ(pids.size(), 2u);
}

TEST(ObsTraceSink, WriteProducesLoadableFile) {
  const MetricsRegistry reg = two_actor_registry();
  TraceEventSink sink;
  sink.add_registry(reg, "run");
  const std::string path = ::testing::TempDir() + "/obs_trace_sink_test.json";
  sink.write(path);

  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const JsonValue doc = parse_json(text);
  EXPECT_TRUE(doc.find("traceEvents")->is_array());
}

}  // namespace
}  // namespace ajac::obs
