// EventRing: the broadcast SPSC seqlock ring under the telemetry pipeline.
// Sequential tests pin the drop-oldest accounting exactly; the concurrent
// stress proves the seqlock protocol delivers only untorn beacons (and,
// under the tsan preset, that the protocol is race-free — the Telemetry
// suite prefix matches the preset's ctest filter).

#include "ajac/obs/event_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace ajac::obs {
namespace {

Beacon make_beacon(std::uint64_t i) {
  // Self-validating payload: every field is a distinct function of i, so
  // a torn read (fields from two different beacons) cannot pass the
  // consistency check in the stress test below.
  Beacon b;
  b.ts_us = static_cast<double>(i) * 0.5;
  b.iteration = static_cast<std::int64_t>(i);
  b.relaxations = i * 3 + 1;
  b.own_residual_1 = 1.0 / static_cast<double>(i + 1);
  b.policy_draws = i * 7;
  b.weight_refreshes = i % 5;
  return b;
}

void expect_beacon(const Beacon& b, std::uint64_t i) {
  EXPECT_EQ(b.ts_us, static_cast<double>(i) * 0.5);
  EXPECT_EQ(b.iteration, static_cast<std::int64_t>(i));
  EXPECT_EQ(b.relaxations, i * 3 + 1);
  EXPECT_EQ(b.own_residual_1, 1.0 / static_cast<double>(i + 1));
  EXPECT_EQ(b.policy_draws, i * 7);
  EXPECT_EQ(b.weight_refreshes, i % 5);
}

TEST(TelemetryRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(0).capacity(), 2u);
  EXPECT_EQ(EventRing(1).capacity(), 2u);
  EXPECT_EQ(EventRing(3).capacity(), 4u);
  EXPECT_EQ(EventRing(8).capacity(), 8u);
  EXPECT_EQ(EventRing(9).capacity(), 16u);
}

TEST(TelemetryRing, FifoRoundtripWithoutLoss) {
  EventRing ring(8);
  ring.writer.assert_held();
  for (std::uint64_t i = 0; i < 8; ++i) ring.publish(make_beacon(i));
  EXPECT_EQ(ring.published(), 8u);

  EventRing::Cursor c;
  Beacon b;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.poll(c, b)) << "i=" << i;
    expect_beacon(b, i);
  }
  EXPECT_FALSE(ring.poll(c, b));
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.next, 8u);
}

TEST(TelemetryRing, DropOldestCountsLappedBeacons) {
  EventRing ring(4);
  ring.writer.assert_held();
  for (std::uint64_t i = 0; i < 11; ++i) ring.publish(make_beacon(i));

  // A reader starting from zero lost beacons 0..6 and reads 7..10.
  EventRing::Cursor c;
  Beacon b;
  std::vector<std::uint64_t> got;
  while (ring.poll(c, b)) got.push_back(b.relaxations);
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k], (7 + k) * 3 + 1);
  }
  EXPECT_EQ(c.dropped, 7u);
  EXPECT_EQ(c.next, 11u);
}

TEST(TelemetryRing, IndependentCursorsSeeTheSameStream) {
  EventRing ring(8);
  ring.writer.assert_held();
  for (std::uint64_t i = 0; i < 5; ++i) ring.publish(make_beacon(i));

  EventRing::Cursor c1;
  EventRing::Cursor c2;
  Beacon b;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.poll(c1, b));
    expect_beacon(b, i);
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.poll(c2, b));
    expect_beacon(b, i);
  }
  EXPECT_FALSE(ring.poll(c1, b));
  EXPECT_FALSE(ring.poll(c2, b));
}

TEST(TelemetryRing, ResumingCursorAfterLongSilenceLosesNothing) {
  EventRing ring(4);
  ring.writer.assert_held();
  EventRing::Cursor c;
  Beacon b;
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      ring.publish(make_beacon(round * 3 + i));
    }
    for (std::uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.poll(c, b));
      expect_beacon(b, round * 3 + i);
    }
    EXPECT_FALSE(ring.poll(c, b));
  }
  EXPECT_EQ(c.dropped, 0u);
}

TEST(TelemetryRing, ConcurrentReaderNeverSeesTornBeacon) {
  // Small ring + fast writer: the reader is lapped constantly, so the
  // seqlock validation path (retry on mid-read overwrite) is exercised
  // hard. Every delivered beacon must be internally consistent, indices
  // strictly increasing, and delivered + dropped must account for every
  // published beacon.
  constexpr std::uint64_t kBeacons = 200000;
  EventRing ring(8);

  std::uint64_t delivered = 0;
  std::int64_t last_iter = -1;
  bool consistent = true;
  EventRing::Cursor c;

  std::thread reader([&] {
    Beacon b;
    for (;;) {
      if (!ring.poll(c, b)) {
        if (ring.published() >= kBeacons) {
          // Writer done: drain whatever is left, then exit.
          while (ring.poll(c, b)) {
            ++delivered;
          }
          return;
        }
        std::this_thread::yield();
        continue;
      }
      ++delivered;
      const auto i = static_cast<std::uint64_t>(b.iteration);
      if (b.relaxations != i * 3 + 1 || b.policy_draws != i * 7 ||
          b.ts_us != static_cast<double>(i) * 0.5) {
        consistent = false;
      }
      if (b.iteration <= last_iter) consistent = false;
      last_iter = b.iteration;
    }
  });

  ring.writer.assert_held();
  for (std::uint64_t i = 0; i < kBeacons; ++i) ring.publish(make_beacon(i));
  reader.join();

  EXPECT_TRUE(consistent);
  EXPECT_EQ(delivered + c.dropped, kBeacons);
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace ajac::obs
