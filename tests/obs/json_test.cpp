#include "ajac/obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ajac::obs {
namespace {

TEST(ObsJson, WriterNestsObjectsAndArrays) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(std::int64_t{1});
  w.key("b").begin_array();
  w.value("x");
  w.value(2.5);
  w.value(true);
  w.null();
  w.end_array();
  w.key("c").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":["x",2.5,true,null],"c":{}})");
}

TEST(ObsJson, WriterEscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("quote\" backslash\\ newline\n tab\t");
  w.end_object();
  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.find("s")->string, "quote\" backslash\\ newline\n tab\t");
}

TEST(ObsJson, WriterEmitsNonFiniteAsNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,1]");
}

TEST(ObsJson, WriterRoundTripsUint64Exactly) {
  // Large counters are emitted as integer literals, not doubles.
  JsonWriter w;
  w.begin_array();
  w.value(std::uint64_t{1} << 53);
  w.value(std::int64_t{-42});
  w.end_array();
  EXPECT_EQ(w.str(), "[9007199254740992,-42]");
}

TEST(ObsJson, ParseRoundTripsNestedDocument) {
  const char* text =
      R"({"k":"v","n":-1.5e2,"arr":[1,2,{"inner":false}],"null":null})";
  const JsonValue doc = parse_json(text);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("k")->string, "v");
  EXPECT_DOUBLE_EQ(doc.find("n")->number, -150.0);
  ASSERT_EQ(doc.find("arr")->array.size(), 3u);
  EXPECT_FALSE(doc.find("arr")->array[2].find("inner")->boolean);
  EXPECT_EQ(doc.find("null")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(ObsJson, ParseHandlesStringEscapes) {
  const JsonValue doc = parse_json(R"(["a\"b", "A\n\t\\"])");
  ASSERT_EQ(doc.array.size(), 2u);
  EXPECT_EQ(doc.array[0].string, "a\"b");
  EXPECT_EQ(doc.array[1].string, "A\n\t\\");
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_json("{"), std::logic_error);
  EXPECT_THROW((void)parse_json("[1,]"), std::logic_error);
  EXPECT_THROW((void)parse_json("{\"a\":1} trailing"), std::logic_error);
  EXPECT_THROW((void)parse_json("{'a':1}"), std::logic_error);
  EXPECT_THROW((void)parse_json(""), std::logic_error);
}

TEST(ObsJson, WriteFileRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/obs_json_roundtrip_test.json";
  write_file(path, R"({"ok":true})");
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const JsonValue doc = parse_json(std::string_view(buf, n));
  EXPECT_TRUE(doc.find("ok")->boolean);
}

}  // namespace
}  // namespace ajac::obs
