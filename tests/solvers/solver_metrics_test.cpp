// Observability contract of the sequential baselines: stationary solvers
// and CG record per-iteration metrics on a single "solver" lane, and a
// null registry changes nothing.

#include <gtest/gtest.h>

#include <cstdint>

#include "ajac/obs/metrics.hpp"
#include "ajac/solvers/krylov.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/vector_ops.hpp"

#include "test_helpers.hpp"

namespace ajac::solvers {
namespace {

std::uint64_t total(const obs::MetricsSnapshot& snap, obs::Counter c) {
  return snap.totals[static_cast<std::size_t>(c)];
}

TEST(SolverMetrics, JacobiCountersMatchResult) {
  const CsrMatrix a = testing::unit_diag_path(50, 0.45);
  const Vector b(static_cast<std::size_t>(a.num_rows()), 1.0);
  const Vector x0(b.size(), 0.0);
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 25;
  obs::MetricsRegistry reg;
  o.metrics = &reg;
  const SolveResult r = jacobi(a, b, x0, o);
  EXPECT_EQ(r.iterations, 25);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.num_actors, 1);
  EXPECT_EQ(total(snap, obs::Counter::kIterations), 25u);
  EXPECT_EQ(total(snap, obs::Counter::kRelaxations),
            25u * static_cast<std::uint64_t>(a.num_rows()));
  EXPECT_EQ(
      snap.histograms[static_cast<std::size_t>(obs::Hist::kIterationUs)]
          .count(),
      25u);
}

TEST(SolverMetrics, JacobiNullRegistryIsBitwiseIdentical) {
  const CsrMatrix a = testing::unit_diag_path(40, 0.4);
  const Vector b(static_cast<std::size_t>(a.num_rows()), 1.0);
  const Vector x0(b.size(), 0.0);
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 20;
  const SolveResult plain = jacobi(a, b, x0, o);
  obs::MetricsRegistry reg;
  o.metrics = &reg;
  const SolveResult observed = jacobi(a, b, x0, o);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(plain.x, observed.x), 0.0);
  EXPECT_EQ(plain.iterations, observed.iterations);
}

TEST(SolverMetrics, GaussSeidelSharesTheInstrumentedPath) {
  // Every stationary method goes through the same iterate() loop, so the
  // metrics lane works for all of them.
  const CsrMatrix a = testing::unit_diag_path(50, 0.45);
  const Vector b(static_cast<std::size_t>(a.num_rows()), 1.0);
  const Vector x0(b.size(), 0.0);
  SolveOptions o;
  o.tolerance = 1e-10;
  o.max_iterations = 10000;
  obs::MetricsRegistry reg;
  o.metrics = &reg;
  const SolveResult r = gauss_seidel(a, b, x0, o);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(total(reg.snapshot(), obs::Counter::kIterations),
            static_cast<std::uint64_t>(r.iterations));
}

TEST(SolverMetrics, ConjugateGradientRecordsIterations) {
  const CsrMatrix a = testing::unit_diag_path(60, 0.45);
  const Vector b(static_cast<std::size_t>(a.num_rows()), 1.0);
  const Vector x0(b.size(), 0.0);
  CgOptions o;
  o.tolerance = 1e-10;
  obs::MetricsRegistry reg;
  o.metrics = &reg;
  const CgResult r = conjugate_gradient(a, b, x0, o);
  EXPECT_TRUE(r.converged);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.num_actors, 1);
  EXPECT_EQ(total(snap, obs::Counter::kIterations),
            static_cast<std::uint64_t>(r.iterations));
  EXPECT_EQ(
      snap.histograms[static_cast<std::size_t>(obs::Hist::kIterationUs)]
          .count(),
      static_cast<std::uint64_t>(r.iterations));
}

}  // namespace
}  // namespace ajac::solvers
