#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"

namespace ajac::solvers {
namespace {

TEST(Ssor, OmegaOneIsForwardThenBackwardGs) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(6, 7), 3);
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 1;
  const SolveResult sym = ssor(p.a, p.b, p.x0, 1.0, o);
  // Manually: forward GS sweep then backward GS sweep.
  const SolveResult fwd = gauss_seidel(p.a, p.b, p.x0, o);
  const SolveResult both = gauss_seidel_backward(p.a, p.b, fwd.x, o);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(sym.x, both.x), 0.0);
}

TEST(Ssor, ConvergesOnSpd) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(10, 10), 5);
  SolveOptions o;
  o.tolerance = 1e-9;
  o.max_iterations = 100000;
  const SolveResult r = ssor(p.a, p.b, p.x0, 1.0, o);
  EXPECT_TRUE(r.converged);
}

TEST(Ssor, FewerIterationsThanPlainGs) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(12, 12), 7);
  SolveOptions o;
  o.tolerance = 1e-8;
  o.max_iterations = 100000;
  const SolveResult sym = ssor(p.a, p.b, p.x0, 1.0, o);
  const SolveResult gs = gauss_seidel(p.a, p.b, p.x0, o);
  ASSERT_TRUE(sym.converged);
  ASSERT_TRUE(gs.converged);
  // SSOR does two sweeps per iteration, so it needs well under the GS
  // iteration count (not exactly half: the symmetrized operator's
  // spectrum differs slightly).
  EXPECT_LT(sym.iterations, gs.iterations * 0.65);
}

TEST(Ssor, OverrelaxationHelps) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(14, 14), 9);
  SolveOptions o;
  o.tolerance = 1e-8;
  o.max_iterations = 100000;
  const SolveResult plain = ssor(p.a, p.b, p.x0, 1.0, o);
  const SolveResult over = ssor(p.a, p.b, p.x0, 1.5, o);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(over.converged);
  EXPECT_LT(over.iterations, plain.iterations);
}

}  // namespace
}  // namespace ajac::solvers
