#include "ajac/solvers/stationary.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/model/schedule.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "test_helpers.hpp"

namespace ajac::solvers {
namespace {

gen::LinearProblem small_fd(std::uint64_t seed = 3) {
  return gen::make_problem("fd", gen::fd_laplacian_2d(8, 8), seed);
}

TEST(Jacobi, ConvergesToTrueSolution) {
  const auto p = small_fd();
  SolveOptions o;
  o.tolerance = 1e-10;
  o.max_iterations = 100000;
  const SolveResult r = jacobi(p.a, p.b, p.x0, o);
  ASSERT_TRUE(r.converged);
  Vector res(p.b.size());
  p.a.residual(r.x, p.b, res);
  Vector r0(p.b.size());
  p.a.residual(p.x0, p.b, r0);
  EXPECT_LE(vec::norm1(res), 1e-10 * vec::norm1(r0) * (1 + 1e-10));
}

TEST(Jacobi, MatchesHandIteration) {
  // One Jacobi step on a 2x2 system, computed by hand.
  const CsrMatrix a(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {2, 1, 1, 3});
  Vector b{3, 5};
  Vector x0{0, 0};
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 1;
  const SolveResult r = jacobi(a, b, x0, o);
  EXPECT_DOUBLE_EQ(r.x[0], 1.5);
  EXPECT_DOUBLE_EQ(r.x[1], 5.0 / 3.0);
}

TEST(Jacobi, DivergesOnFeMatrix) {
  // rho(G) > 1 for the paper's FE matrix: the residual must blow up.
  const auto p = gen::make_problem("fe", gen::paper_fe_3081(), 3);
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 400;
  const SolveResult r = jacobi(p.a, p.b, p.x0, o);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.final_rel_residual, 10.0);
}

TEST(WeightedJacobi, DampingCanBeatPlainJacobiOnFe) {
  // omega = 0.5 damping makes rho(G_omega) = max |1 - 0.5 lambda| < 1 when
  // lambda in (0, 2.5): the FE matrix becomes convergent.
  const auto p = gen::make_problem("fe", gen::paper_fe_3081(), 3);
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 300;
  const SolveResult damped = weighted_jacobi(p.a, p.b, p.x0, 0.5, o);
  EXPECT_LT(damped.final_rel_residual, 1.0);
}

TEST(GaussSeidel, ConvergesFasterThanJacobiOnSpd) {
  const auto p = small_fd();
  SolveOptions o;
  o.tolerance = 1e-8;
  o.max_iterations = 100000;
  const SolveResult gs = gauss_seidel(p.a, p.b, p.x0, o);
  const SolveResult j = jacobi(p.a, p.b, p.x0, o);
  ASSERT_TRUE(gs.converged);
  ASSERT_TRUE(j.converged);
  EXPECT_LT(gs.iterations, j.iterations);
  // Classical result: for consistently ordered matrices GS needs about
  // half the iterations of Jacobi.
  EXPECT_NEAR(static_cast<double>(j.iterations) /
                  static_cast<double>(gs.iterations),
              2.0, 0.5);
}

TEST(GaussSeidel, ConvergesOnFeMatrixWhereJacobiDoesNot) {
  // GS always converges for SPD matrices.
  const auto p = gen::make_problem("fe", gen::paper_fe_3081(), 3);
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 200;
  const SolveResult r = gauss_seidel(p.a, p.b, p.x0, o);
  EXPECT_LT(r.final_rel_residual, 0.05);
}

TEST(GaussSeidel, EqualsSequenceOfSingleRowPropagationMatrices) {
  // Sec. IV-B: relaxing all rows in ascending order one at a time is
  // precisely Gauss-Seidel with natural ordering.
  const auto p = small_fd(11);
  const index_t n = p.a.num_rows();
  SolveOptions so;
  so.tolerance = 0.0;
  so.max_iterations = 5;
  const SolveResult gs = gauss_seidel(p.a, p.b, p.x0, so);

  model::ExecutorOptions mo;
  mo.tolerance = 0.0;
  mo.max_steps = 5 * n;
  model::SequentialSchedule seq(n);
  const model::ModelResult m = model::run_model(p.a, p.b, p.x0, seq, mo);
  EXPECT_NEAR(vec::max_abs_diff(gs.x, m.x), 0.0, 1e-14);
}

TEST(GaussSeidelBackward, DescendingOrderDiffersButConverges) {
  const auto p = small_fd(13);
  SolveOptions o;
  o.tolerance = 1e-8;
  o.max_iterations = 10000;
  const SolveResult fwd = gauss_seidel(p.a, p.b, p.x0, o);
  const SolveResult bwd = gauss_seidel_backward(p.a, p.b, p.x0, o);
  EXPECT_TRUE(bwd.converged);
  // Same fixed point.
  EXPECT_NEAR(vec::max_abs_diff(fwd.x, bwd.x), 0.0, 1e-6);
}

TEST(Sor, OmegaOneIsGaussSeidel) {
  const auto p = small_fd(17);
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 7;
  const SolveResult gs = gauss_seidel(p.a, p.b, p.x0, o);
  const SolveResult s1 = sor(p.a, p.b, p.x0, 1.0, o);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(gs.x, s1.x), 0.0);
}

TEST(Sor, OptimalOmegaBeatsGaussSeidel) {
  const auto p = small_fd(19);
  // Optimal omega for the 8x8-grid Laplacian.
  const double rho = testing::fd2d_jacobi_rho(8, 8);
  const double omega = 2.0 / (1.0 + std::sqrt(1.0 - rho * rho));
  SolveOptions o;
  o.tolerance = 1e-8;
  o.max_iterations = 100000;
  const SolveResult gs = gauss_seidel(p.a, p.b, p.x0, o);
  const SolveResult s = sor(p.a, p.b, p.x0, omega, o);
  ASSERT_TRUE(s.converged);
  EXPECT_LT(s.iterations, gs.iterations);
}

TEST(MulticolorGaussSeidel, EqualsMulticolorMaskSequence) {
  // Sec. IV-B Eq. 10: color-by-color masked relaxations.
  const auto p = small_fd(23);
  [[maybe_unused]] const index_t n = p.a.num_rows();
  index_t num_colors = 0;
  const auto colors = model::greedy_coloring(p.a, &num_colors);

  SolveOptions so;
  so.tolerance = 0.0;
  so.max_iterations = 4;
  const SolveResult mc =
      multicolor_gauss_seidel(p.a, p.b, p.x0, colors, num_colors, so);

  model::ExecutorOptions mo;
  mo.tolerance = 0.0;
  mo.max_steps = 4 * num_colors;
  model::MulticolorSchedule sched(colors, num_colors);
  const model::ModelResult m = model::run_model(p.a, p.b, p.x0, sched, mo);
  EXPECT_NEAR(vec::max_abs_diff(mc.x, m.x), 0.0, 1e-14);
}

TEST(MulticolorGaussSeidel, ConvergesOnGrid) {
  const auto p = small_fd(29);
  index_t num_colors = 0;
  const auto colors = model::greedy_coloring(p.a, &num_colors);
  SolveOptions o;
  o.tolerance = 1e-8;
  o.max_iterations = 10000;
  const SolveResult r =
      multicolor_gauss_seidel(p.a, p.b, p.x0, colors, num_colors, o);
  EXPECT_TRUE(r.converged);
}

TEST(InexactBlockJacobi, SingleBlockSweepIsGsSweep) {
  // One block covering everything with one inner sweep = one GS sweep.
  const auto p = small_fd(31);
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 3;
  const SolveResult blk =
      inexact_block_jacobi(p.a, p.b, p.x0, {0, p.a.num_rows()}, 1, o);
  const SolveResult gs = gauss_seidel(p.a, p.b, p.x0, o);
  EXPECT_NEAR(vec::max_abs_diff(blk.x, gs.x), 0.0, 1e-14);
}

TEST(InexactBlockJacobi, SingletonBlocksAreJacobi) {
  const auto p = small_fd(37);
  const index_t n = p.a.num_rows();
  std::vector<index_t> starts(static_cast<std::size_t>(n) + 1);
  for (index_t i = 0; i <= n; ++i) starts[i] = i;
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 5;
  const SolveResult blk = inexact_block_jacobi(p.a, p.b, p.x0, starts, 1, o);
  const SolveResult j = jacobi(p.a, p.b, p.x0, o);
  EXPECT_NEAR(vec::max_abs_diff(blk.x, j.x), 0.0, 1e-14);
}

TEST(InexactBlockJacobi, MoreInnerSweepsConvergeFaster) {
  const auto p = small_fd(41);
  const std::vector<index_t> starts{0, 16, 32, 48, 64};
  SolveOptions o;
  o.tolerance = 1e-8;
  o.max_iterations = 100000;
  const SolveResult one = inexact_block_jacobi(p.a, p.b, p.x0, starts, 1, o);
  const SolveResult three = inexact_block_jacobi(p.a, p.b, p.x0, starts, 3, o);
  ASSERT_TRUE(one.converged);
  ASSERT_TRUE(three.converged);
  EXPECT_LE(three.iterations, one.iterations);
}

TEST(SolveOptions, HistoryRespectsRecordEvery) {
  const auto p = small_fd(43);
  SolveOptions o;
  o.tolerance = 0.0;
  o.max_iterations = 20;
  o.record_every = 5;
  const SolveResult r = jacobi(p.a, p.b, p.x0, o);
  EXPECT_EQ(r.history.size(), 5u);  // 0, 5, 10, 15, 20
}

TEST(SolveOptions, NormSelectionChangesCriterion) {
  const auto p = small_fd(47);
  for (ResidualNorm norm :
       {ResidualNorm::kL1, ResidualNorm::kL2, ResidualNorm::kLinf}) {
    SolveOptions o;
    o.tolerance = 1e-6;
    o.max_iterations = 100000;
    o.norm = norm;
    EXPECT_TRUE(jacobi(p.a, p.b, p.x0, o).converged);
  }
}

}  // namespace
}  // namespace ajac::solvers
