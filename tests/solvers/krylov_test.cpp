#include "ajac/solvers/krylov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::solvers {
namespace {

TEST(ConjugateGradient, SolvesToTrueSolution) {
  const CsrMatrix a = gen::fd_laplacian_2d(12, 12);
  Rng rng(3);
  Vector x_true(static_cast<std::size_t>(a.num_rows()));
  vec::fill_uniform(x_true, rng);
  Vector b(x_true.size());
  a.spmv(x_true, b);
  Vector x0(x_true.size(), 0.0);
  const CgResult r = conjugate_gradient(a, b, x0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(vec::max_abs_diff(r.x, x_true), 0.0, 1e-6);
}

TEST(ConjugateGradient, ExactInNStepsInTheory) {
  // Finite termination: on a tiny system CG converges to machine
  // precision in at most n iterations.
  const CsrMatrix a = gen::fd_laplacian_1d(12);
  Vector b(12, 1.0);
  Vector x0(12, 0.0);
  CgOptions o;
  o.tolerance = 1e-12;
  const CgResult r = conjugate_gradient(a, b, x0, o);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 12);
}

TEST(ConjugateGradient, FarFewerIterationsThanJacobi) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(20, 20), 5);
  CgOptions co;
  co.tolerance = 1e-8;
  const CgResult cg = conjugate_gradient(p.a, p.b, p.x0, co);
  SolveOptions jo;
  jo.tolerance = 1e-8;
  jo.norm = ResidualNorm::kL2;
  jo.max_iterations = 1000000;
  const SolveResult j = jacobi(p.a, p.b, p.x0, jo);
  ASSERT_TRUE(cg.converged);
  ASSERT_TRUE(j.converged);
  EXPECT_LT(cg.iterations * 10, j.iterations);
}

TEST(ConjugateGradient, JacobiPreconditionerHelpsOnBadScaling) {
  // Badly scaled diagonal: plain CG suffers, Jacobi-PCG recovers.
  const CsrMatrix lap = gen::fd_laplacian_2d(10, 10);
  std::vector<index_t> row_ptr(lap.row_ptr().begin(), lap.row_ptr().end());
  std::vector<index_t> col_idx(lap.col_idx().begin(), lap.col_idx().end());
  std::vector<double> values(lap.values().begin(), lap.values().end());
  // Scale rows/cols by wildly varying factors (symmetric scaling keeps SPD).
  std::vector<double> scale(static_cast<std::size_t>(lap.num_rows()));
  Rng rng(9);
  for (double& v : scale) v = std::exp(rng.uniform(-4.0, 4.0));
  for (index_t i = 0; i < lap.num_rows(); ++i) {
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      values[p] *= scale[i] * scale[col_idx[p]];
    }
  }
  const CsrMatrix a(lap.num_rows(), lap.num_cols(), std::move(row_ptr),
                    std::move(col_idx), std::move(values));
  Vector b(static_cast<std::size_t>(a.num_rows()));
  vec::fill_uniform(b, rng);
  Vector x0(b.size(), 0.0);

  CgOptions plain;
  plain.tolerance = 1e-8;
  plain.max_iterations = 5000;
  CgOptions pre = plain;
  pre.jacobi_preconditioner = true;
  const CgResult r_plain = conjugate_gradient(a, b, x0, plain);
  const CgResult r_pre = conjugate_gradient(a, b, x0, pre);
  ASSERT_TRUE(r_pre.converged);
  EXPECT_LT(r_pre.iterations, r_plain.iterations);
}

TEST(ConjugateGradient, CountsSynchronizations) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(8, 8), 11);
  const CgResult r = conjugate_gradient(p.a, p.b, p.x0);
  ASSERT_TRUE(r.converged);
  // 2 dots per iteration + 2 startup reductions.
  EXPECT_EQ(r.synchronizations, 2 * r.iterations + 2);
}

TEST(ConjugateGradient, DetectsIndefiniteMatrix) {
  // -Laplacian is negative definite: p'Ap < 0 on the first step.
  const CsrMatrix lap = gen::fd_laplacian_1d(6);
  std::vector<index_t> row_ptr(lap.row_ptr().begin(), lap.row_ptr().end());
  std::vector<index_t> col_idx(lap.col_idx().begin(), lap.col_idx().end());
  std::vector<double> values(lap.values().begin(), lap.values().end());
  for (double& v : values) v = -v;
  const CsrMatrix a(6, 6, std::move(row_ptr), std::move(col_idx),
                    std::move(values));
  Vector b(6, 1.0);
  Vector x0(6, 0.0);
  const CgResult r = conjugate_gradient(a, b, x0);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 1);
}

TEST(ConjugateGradient, ZeroResidualStartsConverged) {
  const CsrMatrix a = gen::fd_laplacian_1d(5);
  Vector x0(5, 0.0);
  Vector b(5, 0.0);
  const CgResult r = conjugate_gradient(a, b, x0);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace
}  // namespace ajac::solvers
