#include <gtest/gtest.h>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac::distsim {
namespace {

TEST(RankStatsTest, AccountingIsConsistent) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(12, 12), 3);
  DistOptions o;
  o.num_processes = 6;
  o.max_iterations = 40;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 6);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  ASSERT_EQ(r.rank_stats.size(), 6u);
  index_t sent = 0;
  index_t received = 0;
  for (const RankStats& rs : r.rank_stats) {
    EXPECT_EQ(rs.iterations, 40);
    EXPECT_GT(rs.busy_seconds, 0.0);
    EXPECT_GE(rs.wait_seconds, 0.0);
    EXPECT_LE(rs.busy_seconds, r.sim_seconds * 1.01);
    sent += rs.messages_sent;
    received += rs.messages_received;
  }
  // Every sent message is eventually delivered or still in flight at the
  // end; delivered ones equal the result's total count.
  EXPECT_EQ(received, r.total_messages);
  EXPECT_GE(sent, received);
}

TEST(RankStatsTest, NoCoreContentionMeansNoWait) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(10, 10), 5);
  DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 30;
  o.cost.cores = 0;  // dedicated cores
  const auto part = partition::contiguous_partition(p.a.num_rows(), 4);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  for (const RankStats& rs : r.rank_stats) {
    EXPECT_DOUBLE_EQ(rs.wait_seconds, 0.0);
  }
}

TEST(RankStatsTest, ContentionCreatesWait) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(10, 10), 7);
  DistOptions o;
  o.num_processes = 8;
  o.max_iterations = 30;
  o.cost.cores = 2;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 8);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  double total_wait = 0.0;
  for (const RankStats& rs : r.rank_stats) total_wait += rs.wait_seconds;
  EXPECT_GT(total_wait, 0.0);
}

TEST(RankStatsTest, InteriorRanksExchangeMoreThanEdgeRanks) {
  // 1D-slab partition of a grid: middle slabs have two neighbors, end
  // slabs one — message counts must reflect that.
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(4, 24), 9);
  DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 20;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 4);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  EXPECT_GT(r.rank_stats[1].messages_sent, r.rank_stats[0].messages_sent);
  EXPECT_GT(r.rank_stats[2].messages_sent, r.rank_stats[3].messages_sent);
}

TEST(RankStatsTest, SyncModeLeavesStatsEmpty) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(6, 6), 11);
  DistOptions o;
  o.num_processes = 3;
  o.synchronous = true;
  o.max_iterations = 10;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 3);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  EXPECT_TRUE(r.rank_stats.empty());
}

}  // namespace
}  // namespace ajac::distsim
