#include "ajac/distsim/dist_jacobi.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"

namespace ajac::distsim {
namespace {

gen::LinearProblem fd_problem(index_t nx, index_t ny, std::uint64_t seed) {
  return gen::make_problem("fd", gen::fd_laplacian_2d(nx, ny), seed);
}

class DistSyncEquivalence : public ::testing::TestWithParam<index_t> {};

TEST_P(DistSyncEquivalence, SyncModeIsBitwiseSequentialJacobi) {
  // Whatever the partition, BSP supersteps with full ghost exchange give
  // exactly the sequential Jacobi iterate sequence.
  const index_t procs = GetParam();
  const auto p = fd_problem(8, 9, 3);
  DistOptions o;
  o.num_processes = procs;
  o.synchronous = true;
  o.max_iterations = 30;
  const auto part = partition::contiguous_partition(p.a.num_rows(), procs);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);

  solvers::SolveOptions ro;
  ro.tolerance = 0.0;
  ro.max_iterations = 30;
  const auto ref = solvers::jacobi(p.a, p.b, p.x0, ro);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(r.x, ref.x), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, DistSyncEquivalence,
                         ::testing::Values(1, 2, 3, 8, 24, 72));

TEST(DistAsync, ConvergesOnWddProblem) {
  const auto p = fd_problem(12, 12, 5);
  DistOptions o;
  o.num_processes = 8;
  o.max_iterations = 20000;
  o.tolerance = 1e-6;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 8);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  EXPECT_TRUE(r.reached_tolerance);
  // Independent residual verification.
  Vector res(p.b.size());
  p.a.residual(r.x, p.b, res);
  Vector r0(p.b.size());
  p.a.residual(p.x0, p.b, r0);
  EXPECT_LE(vec::norm1(res) / vec::norm1(r0), 1e-5);
}

TEST(DistAsync, SingleProcessMatchesSequential) {
  const auto p = fd_problem(6, 6, 7);
  DistOptions o;
  o.num_processes = 1;
  o.max_iterations = 25;
  const DistResult r = solve_distributed(
      p.a, p.b, p.x0, partition::contiguous_partition(p.a.num_rows(), 1), o);
  solvers::SolveOptions ro;
  ro.tolerance = 0.0;
  ro.max_iterations = 25;
  const auto ref = solvers::jacobi(p.a, p.b, p.x0, ro);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(r.x, ref.x), 0.0);
}

TEST(DistAsync, DeterministicForFixedSeed) {
  const auto p = fd_problem(8, 8, 9);
  DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 60;
  o.seed = 1234;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 4);
  const DistResult r1 = solve_distributed(p.a, p.b, p.x0, part, o);
  const DistResult r2 = solve_distributed(p.a, p.b, p.x0, part, o);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(r1.x, r2.x), 0.0);
  EXPECT_EQ(r1.total_messages, r2.total_messages);
  EXPECT_DOUBLE_EQ(r1.sim_seconds, r2.sim_seconds);
}

TEST(DistAsync, EveryProcessCompletesItsIterations) {
  const auto p = fd_problem(10, 10, 11);
  DistOptions o;
  o.num_processes = 5;
  o.max_iterations = 40;
  const DistResult r = solve_distributed(
      p.a, p.b, p.x0, partition::contiguous_partition(p.a.num_rows(), 5), o);
  for (index_t it : r.iterations_per_process) EXPECT_EQ(it, 40);
  EXPECT_EQ(r.total_relaxations, 40 * p.a.num_rows());
}

TEST(DistAsync, HistoryMonotoneInTimeAndRelaxations) {
  const auto p = fd_problem(10, 10, 13);
  DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 100;
  const DistResult r = solve_distributed(
      p.a, p.b, p.x0, partition::contiguous_partition(p.a.num_rows(), 4), o);
  ASSERT_GE(r.history.size(), 2u);
  for (std::size_t k = 1; k < r.history.size(); ++k) {
    EXPECT_GE(r.history[k].sim_seconds, r.history[k - 1].sim_seconds);
    EXPECT_GE(r.history[k].relaxations, r.history[k - 1].relaxations);
  }
}

TEST(DistAsync, DelayedProcessStillAllowsProgress) {
  // Sec. IV-C in distributed form: one rank 50x slower; the others keep
  // reducing the residual.
  const auto p = fd_problem(12, 12, 15);
  DistOptions o;
  o.num_processes = 6;
  o.max_iterations = 300;
  o.delayed_process = 3;
  o.delay_factor = 50.0;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 6);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  EXPECT_LT(r.final_rel_residual_1, 0.2);
  // The delayed rank really ran slower: the whole run (which waits for its
  // 300 iterations) takes far longer in simulated time than without delay.
  DistOptions no_delay = o;
  no_delay.delayed_process = -1;
  no_delay.delay_factor = 1.0;
  const DistResult fast = solve_distributed(p.a, p.b, p.x0, part, no_delay);
  EXPECT_GT(r.sim_seconds, 10.0 * fast.sim_seconds);
}

TEST(DistAsync, OrderedDeliveryDropsStaleOverwrites) {
  const auto p = fd_problem(10, 10, 17);
  DistOptions base;
  base.num_processes = 8;
  base.max_iterations = 200;
  base.cost.msg_jitter_sigma = 1.0;  // heavy reordering
  const auto part = partition::contiguous_partition(p.a.num_rows(), 8);

  DistOptions raw = base;
  raw.ordered_delivery = false;
  DistOptions ordered = base;
  ordered.ordered_delivery = true;
  const DistResult r_raw = solve_distributed(p.a, p.b, p.x0, part, raw);
  const DistResult r_ord = solve_distributed(p.a, p.b, p.x0, part, ordered);
  // With this much jitter some messages must arrive out of order.
  EXPECT_GT(r_raw.reordered_messages, 0);
  EXPECT_GT(r_ord.reordered_messages, 0);
  // Both still converge on the W.D.D. problem.
  EXPECT_LT(r_raw.final_rel_residual_1, 0.05);
  EXPECT_LT(r_ord.final_rel_residual_1, 0.05);
}

TEST(DistAsync, EagerRuleTerminates) {
  const auto p = fd_problem(8, 8, 19);
  DistOptions o;
  o.num_processes = 4;
  o.update_rule = UpdateRule::kEager;
  o.max_iterations = 50;
  const DistResult r = solve_distributed(
      p.a, p.b, p.x0, partition::contiguous_partition(p.a.num_rows(), 4), o);
  // All processes end; iteration counts are bounded by the cap.
  for (index_t it : r.iterations_per_process) {
    EXPECT_LE(it, 50);
    EXPECT_GE(it, 1);
  }
  EXPECT_LT(r.final_rel_residual_1, 1.0);
}

TEST(DistAsync, TraceMatchesRelaxationCount) {
  const auto p = fd_problem(6, 6, 21);
  DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 20;
  o.record_trace = true;
  const DistResult r = solve_distributed(
      p.a, p.b, p.x0, partition::contiguous_partition(p.a.num_rows(), 4), o);
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_EQ(static_cast<index_t>(r.trace->events().size()),
            r.total_relaxations);
  const auto analysis = model::analyze_trace(*r.trace);
  EXPECT_EQ(analysis.orphaned, 0);
}

TEST(DistAsync, CoreContentionStretchesTime) {
  const auto p = fd_problem(10, 10, 23);
  DistOptions fat;
  fat.num_processes = 16;
  fat.max_iterations = 50;
  DistOptions thin = fat;
  thin.cost.cores = 2;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 16);
  const DistResult r_fat = solve_distributed(p.a, p.b, p.x0, part, fat);
  const DistResult r_thin = solve_distributed(p.a, p.b, p.x0, part, thin);
  EXPECT_GT(r_thin.sim_seconds, r_fat.sim_seconds * 2.0);
}

TEST(DistAsync, StaleReadDiagnosticsPopulated) {
  const auto p = fd_problem(10, 10, 25);
  DistOptions o;
  o.num_processes = 8;
  o.max_iterations = 50;
  const DistResult r = solve_distributed(
      p.a, p.b, p.x0, partition::contiguous_partition(p.a.num_rows(), 8), o);
  EXPECT_GT(r.total_ghost_reads, 0);
  EXPECT_LE(r.stale_ghost_reads, r.total_ghost_reads);
  EXPECT_GT(r.total_messages, 0);
}

TEST(DistSync, ToleranceStopsEarly) {
  const auto p = fd_problem(10, 10, 27);
  DistOptions o;
  o.num_processes = 4;
  o.synchronous = true;
  o.max_iterations = 100000;
  o.tolerance = 1e-4;
  const DistResult r = solve_distributed(
      p.a, p.b, p.x0, partition::contiguous_partition(p.a.num_rows(), 4), o);
  EXPECT_TRUE(r.reached_tolerance);
  EXPECT_LT(r.iterations_per_process[0], 100000);
}

TEST(DistOptionsValidation, PartitionMismatchThrows) {
  const auto p = fd_problem(4, 4, 29);
  DistOptions o;
  o.num_processes = 3;
  EXPECT_THROW(
      solve_distributed(p.a, p.b, p.x0,
                        partition::contiguous_partition(p.a.num_rows(), 4), o),
      std::logic_error);
}

TEST(DistAsync, RowLevelPutsStillConverge) {
  const auto p = fd_problem(10, 10, 31);
  DistOptions o;
  o.num_processes = 8;
  o.max_iterations = 2000;
  o.tolerance = 1e-5;
  o.row_level_puts = true;
  const DistResult r = solve_distributed(
      p.a, p.b, p.x0, partition::contiguous_partition(p.a.num_rows(), 8), o);
  EXPECT_TRUE(r.reached_tolerance);
}

}  // namespace
}  // namespace ajac::distsim
