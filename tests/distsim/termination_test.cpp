// Tests for the distributed termination-detection protocol (the paper's
// stated future work, Sec. VI) and the inner-sweep variants.

#include <gtest/gtest.h>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"

namespace ajac::distsim {
namespace {

gen::LinearProblem fd_problem(index_t nx, index_t ny, std::uint64_t seed) {
  return gen::make_problem("fd", gen::fd_laplacian_2d(nx, ny), seed);
}

TEST(NormReduction, DetectsConvergenceNearTruth) {
  const auto p = fd_problem(20, 20, 3);
  DistOptions o;
  o.num_processes = 16;
  o.max_iterations = 100000;
  o.tolerance = 1e-5;
  o.termination = Termination::kNormReduction;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 16);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  ASSERT_TRUE(r.termination_detected);
  EXPECT_GT(r.detection_sim_seconds, 0.0);
  EXPECT_LE(r.detection_claimed_residual, 1e-5);
  // Staleness bounds: the true residual at detection is within a small
  // factor of the claim (both sides — it keeps decreasing).
  EXPECT_LE(r.detection_true_residual, 1e-5 * 5.0);
  // All ranks actually stopped (well before the iteration cap).
  for (index_t it : r.iterations_per_process) EXPECT_LT(it, 100000);
}

TEST(NormReduction, FinalResidualBeatsTolerance) {
  const auto p = fd_problem(16, 16, 5);
  DistOptions o;
  o.num_processes = 8;
  o.max_iterations = 100000;
  o.tolerance = 1e-6;
  o.termination = Termination::kNormReduction;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 8);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  ASSERT_TRUE(r.termination_detected);
  // Ranks keep relaxing between detection and stop arrival, so the final
  // state is at least as good as the detected one (W.D.D. monotonicity).
  EXPECT_LE(r.final_rel_residual_1, r.detection_true_residual * 1.01);
}

TEST(NormReduction, OverheadVersusOracleIsSmall) {
  const auto p = fd_problem(20, 20, 7);
  const auto part = partition::contiguous_partition(p.a.num_rows(), 16);
  DistOptions o;
  o.num_processes = 16;
  o.max_iterations = 100000;
  o.tolerance = 1e-5;

  o.termination = Termination::kNormReduction;
  const DistResult detected = solve_distributed(p.a, p.b, p.x0, part, o);
  o.termination = Termination::kIterationCountOrOracle;
  const DistResult oracle = solve_distributed(p.a, p.b, p.x0, part, o);
  ASSERT_TRUE(detected.termination_detected);
  ASSERT_TRUE(oracle.reached_tolerance);
  // Detection should cost at most ~50% extra simulated time over the
  // omniscient stop (reports every few iterations + broadcast latency).
  EXPECT_LE(detected.detection_sim_seconds, oracle.sim_seconds * 1.5);
}

TEST(NormReduction, WithoutToleranceFallsBackToIterationCount) {
  const auto p = fd_problem(8, 8, 9);
  DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 30;
  o.tolerance = 0.0;
  o.termination = Termination::kNormReduction;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 4);
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  EXPECT_FALSE(r.termination_detected);
  for (index_t it : r.iterations_per_process) EXPECT_EQ(it, 30);
}

TEST(NormReduction, DetectionIntervalTradesTraffic) {
  const auto p = fd_problem(16, 16, 11);
  const auto part = partition::contiguous_partition(p.a.num_rows(), 8);
  DistOptions o;
  o.num_processes = 8;
  o.max_iterations = 100000;
  o.tolerance = 1e-4;
  o.termination = Termination::kNormReduction;
  o.detection_interval = 1;
  const DistResult fine = solve_distributed(p.a, p.b, p.x0, part, o);
  o.detection_interval = 32;
  const DistResult coarse = solve_distributed(p.a, p.b, p.x0, part, o);
  ASSERT_TRUE(fine.termination_detected);
  ASSERT_TRUE(coarse.termination_detected);
  // Coarser reporting detects later (or equal).
  EXPECT_GE(coarse.detection_sim_seconds,
            fine.detection_sim_seconds * 0.99);
}

TEST(InnerSweep, SyncGsInnerEqualsInexactBlockJacobi) {
  // Distributed sync with a GS inner sweep must match the sequential
  // inexact-block-Jacobi reference bitwise (same partition).
  const auto p = fd_problem(9, 8, 13);
  const index_t procs = 4;
  const auto part = partition::contiguous_partition(p.a.num_rows(), procs);
  DistOptions o;
  o.num_processes = procs;
  o.synchronous = true;
  o.inner_sweep = InnerSweep::kGaussSeidel;
  o.max_iterations = 20;
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);

  solvers::SolveOptions so;
  so.tolerance = 0.0;
  so.max_iterations = 20;
  std::vector<index_t> starts(part.block_starts.begin(),
                              part.block_starts.end());
  const auto ref =
      solvers::inexact_block_jacobi(p.a, p.b, p.x0, starts, 1, so);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(r.x, ref.x), 0.0);
}

TEST(InnerSweep, GsInnerConvergesFasterOnWdd) {
  const auto p = fd_problem(24, 24, 15);
  const auto part = partition::contiguous_partition(p.a.num_rows(), 8);
  DistOptions o;
  o.num_processes = 8;
  o.max_iterations = 100000;
  o.tolerance = 1e-5;
  const DistResult jac = solve_distributed(p.a, p.b, p.x0, part, o);
  o.inner_sweep = InnerSweep::kGaussSeidel;
  const DistResult gs = solve_distributed(p.a, p.b, p.x0, part, o);
  ASSERT_TRUE(jac.reached_tolerance);
  ASSERT_TRUE(gs.reached_tolerance);
  EXPECT_LT(gs.total_relaxations, jac.total_relaxations);
}

TEST(InnerSweep, TraceWithGsInnerIsRejected) {
  const auto p = fd_problem(6, 6, 17);
  DistOptions o;
  o.num_processes = 4;
  o.inner_sweep = InnerSweep::kGaussSeidel;
  o.record_trace = true;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 4);
  EXPECT_THROW(solve_distributed(p.a, p.b, p.x0, part, o), std::logic_error);
}

}  // namespace
}  // namespace ajac::distsim
