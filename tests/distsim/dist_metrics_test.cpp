// Observability contract of solve_distributed: a null registry changes
// nothing, a live registry's aggregate counters agree with the DistResult,
// and fault injections show up as timeline instants.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/obs/json.hpp"
#include "ajac/obs/metrics.hpp"
#include "ajac/obs/trace_sink.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/sparse/vector_ops.hpp"

#include "ajac/distsim/dist_jacobi.hpp"

namespace ajac::distsim {
namespace {

gen::LinearProblem fd_problem(index_t nx, index_t ny, std::uint64_t seed) {
  return gen::make_problem("fd", gen::fd_laplacian_2d(nx, ny), seed);
}

std::uint64_t total(const obs::MetricsSnapshot& snap, obs::Counter c) {
  return snap.totals[static_cast<std::size_t>(c)];
}

TEST(DistMetrics, NullRegistryResultIsBitwiseIdentical) {
  // The simulator is deterministic for a fixed seed, so the instrumented
  // run must reproduce the uninstrumented one exactly.
  const auto p = fd_problem(10, 10, 3);
  const auto part = partition::contiguous_partition(p.a.num_rows(), 4);
  DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 40;
  const DistResult plain = solve_distributed(p.a, p.b, p.x0, part, o);

  obs::MetricsRegistry reg;
  o.metrics = &reg;
  const DistResult observed = solve_distributed(p.a, p.b, p.x0, part, o);

  EXPECT_DOUBLE_EQ(vec::max_abs_diff(plain.x, observed.x), 0.0);
  EXPECT_EQ(plain.total_relaxations, observed.total_relaxations);
  EXPECT_EQ(plain.total_messages, observed.total_messages);
  EXPECT_DOUBLE_EQ(plain.sim_seconds, observed.sim_seconds);
}

TEST(DistMetrics, AggregateCountersAgreeWithDistResult) {
  const auto p = fd_problem(12, 12, 5);
  const auto part = partition::contiguous_partition(p.a.num_rows(), 4);
  DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 50;
  obs::MetricsRegistry reg;
  o.metrics = &reg;
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.num_actors, 4);
  std::uint64_t iter_sum = 0;
  for (index_t it : r.iterations_per_process) {
    iter_sum += static_cast<std::uint64_t>(it);
  }
  EXPECT_EQ(total(snap, obs::Counter::kIterations), iter_sum);
  EXPECT_EQ(total(snap, obs::Counter::kRelaxations),
            static_cast<std::uint64_t>(r.total_relaxations));
  // DistResult::total_messages counts deliveries, not sends.
  EXPECT_EQ(total(snap, obs::Counter::kMessagesReceived),
            static_cast<std::uint64_t>(r.total_messages));
  // Per-rank message counters mirror rank_stats.
  ASSERT_EQ(r.rank_stats.size(), 4u);
  for (std::size_t pr = 0; pr < 4; ++pr) {
    EXPECT_EQ(snap.per_actor[pr][static_cast<std::size_t>(
                  obs::Counter::kMessagesSent)],
              static_cast<std::uint64_t>(r.rank_stats[pr].messages_sent));
    EXPECT_EQ(snap.per_actor[pr][static_cast<std::size_t>(
                  obs::Counter::kMessagesReceived)],
              static_cast<std::uint64_t>(r.rank_stats[pr].messages_received));
  }
  // Every put that survives the network (all of them, without faults)
  // carries one latency sample.
  EXPECT_EQ(
      snap.histograms[static_cast<std::size_t>(obs::Hist::kMessageLatencyUs)]
          .count(),
      total(snap, obs::Counter::kMessagesSent));
}

TEST(DistMetrics, DropFaultsAppearInCountersAndTimeline) {
  const auto p = fd_problem(10, 10, 7);
  const auto part = partition::contiguous_partition(p.a.num_rows(), 4);
  auto plan = std::make_shared<fault::FaultPlan>();
  fault::MessageFaultSpec drop;
  drop.drop_probability = 0.3;
  plan->message_faults.push_back(drop);
  DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 60;
  o.fault_plan = plan;
  obs::MetricsRegistry reg;
  o.metrics = &reg;
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  ASSERT_GT(r.dropped_messages, 0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(total(snap, obs::Counter::kMessagesDropped),
            static_cast<std::uint64_t>(r.dropped_messages));
  EXPECT_GE(total(snap, obs::Counter::kFaultEvents),
            static_cast<std::uint64_t>(r.dropped_messages));

  // The drops are visible as message_drop instants in the exported trace.
  obs::TraceEventSink sink;
  sink.add_registry(reg, "solve_distributed");
  const obs::JsonValue doc = obs::parse_json(sink.to_json());
  std::size_t drop_instants = 0;
  for (const obs::JsonValue& e : doc.find("traceEvents")->array) {
    if (e.find("name")->string == "message_drop") ++drop_instants;
  }
  EXPECT_EQ(drop_instants, static_cast<std::size_t>(r.dropped_messages));
}

TEST(DistMetrics, GhostReadAgeTracksStaleDeliveries) {
  const auto p = fd_problem(10, 10, 9);
  const auto part = partition::contiguous_partition(p.a.num_rows(), 4);
  DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 50;
  obs::MetricsRegistry reg;
  o.metrics = &reg;
  const DistResult r = solve_distributed(p.a, p.b, p.x0, part, o);
  ASSERT_GT(r.total_messages, 0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::Histogram& age =
      snap.histograms[static_cast<std::size_t>(obs::Hist::kGhostReadAge)];
  // One sample per delivered message.
  EXPECT_EQ(age.count(), total(snap, obs::Counter::kMessagesReceived));
  EXPECT_LE(age.max(), static_cast<std::uint64_t>(o.max_iterations));
}

}  // namespace
}  // namespace ajac::distsim
