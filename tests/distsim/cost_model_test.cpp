#include "ajac/distsim/cost_model.hpp"

#include <gtest/gtest.h>

namespace ajac::distsim {
namespace {

TEST(CostModel, MessageTimeIsAlphaBeta) {
  CostModel c;
  c.alpha = 1e-6;
  c.beta = 1e-9;
  EXPECT_DOUBLE_EQ(c.message_time(0), 1e-6);
  EXPECT_DOUBLE_EQ(c.message_time(1000), 1e-6 + 1e-6);
}

TEST(CostModel, BarrierGrowsLogarithmically) {
  CostModel c;
  c.barrier_base = 1e-6;
  EXPECT_DOUBLE_EQ(c.barrier_time(1), 0.0);
  EXPECT_DOUBLE_EQ(c.barrier_time(2), 1e-6);
  EXPECT_DOUBLE_EQ(c.barrier_time(4), 2e-6);
  EXPECT_NEAR(c.barrier_time(1024), 10e-6, 1e-12);
}

TEST(CostModel, NetworkPresetEqualsDefaults) {
  const CostModel def;
  const CostModel net = CostModel::network_like();
  EXPECT_DOUBLE_EQ(net.alpha, def.alpha);
  EXPECT_DOUBLE_EQ(net.flop_time, def.flop_time);
}

TEST(CostModel, SharedMemoryPresetScalesOverheadWithN) {
  const CostModel small = CostModel::shared_memory_like(100);
  const CostModel large = CostModel::shared_memory_like(100000);
  EXPECT_GT(large.iteration_overhead, small.iteration_overhead);
  // Coherency latency far below a NIC round trip.
  EXPECT_LT(small.alpha, CostModel::network_like().alpha);
}

}  // namespace
}  // namespace ajac::distsim
