#include "ajac/distsim/local_block.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac::distsim {
namespace {

TEST(LocalBlock, CoversAllRowsAndNonzeros) {
  const CsrMatrix a = gen::fd_laplacian_2d(6, 6);
  const auto part = partition::contiguous_partition(a.num_rows(), 4);
  const auto blocks = build_local_blocks(a, part);
  ASSERT_EQ(blocks.size(), 4u);
  index_t rows = 0;
  index_t nnz = 0;
  for (const auto& blk : blocks) {
    rows += blk.num_owned();
    nnz += blk.num_nonzeros();
  }
  EXPECT_EQ(rows, a.num_rows());
  EXPECT_EQ(nnz, a.num_nonzeros());
}

TEST(LocalBlock, GhostColumnsAreExactlyOffBlockColumns) {
  const CsrMatrix a = gen::fd_laplacian_2d(5, 5);
  const auto part = partition::contiguous_partition(a.num_rows(), 5);
  const auto blocks = build_local_blocks(a, part);
  for (const auto& blk : blocks) {
    EXPECT_TRUE(std::is_sorted(blk.ghost_cols.begin(), blk.ghost_cols.end()));
    for (index_t g : blk.ghost_cols) {
      EXPECT_TRUE(g < blk.row_begin || g >= blk.row_end);
    }
  }
}

TEST(LocalBlock, LocalColumnRemappingRoundTrips) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 6);
  const auto part = partition::contiguous_partition(a.num_rows(), 3);
  const auto blocks = build_local_blocks(a, part);
  for (const auto& blk : blocks) {
    const index_t m = blk.num_owned();
    for (index_t i = 0; i < m; ++i) {
      const auto global_cols = a.row_cols(blk.row_begin + i);
      const auto global_vals = a.row_values(blk.row_begin + i);
      for (index_t p = blk.row_ptr[i]; p < blk.row_ptr[i + 1]; ++p) {
        const index_t lc = blk.col_idx[p];
        const index_t gc =
            lc < m ? blk.row_begin + lc : blk.ghost_cols[lc - m];
        const std::size_t k = p - blk.row_ptr[i];
        EXPECT_EQ(gc, global_cols[k]);
        EXPECT_DOUBLE_EQ(blk.values[p], global_vals[k]);
      }
    }
  }
}

TEST(LocalBlock, SendRecvListsAreReciprocal) {
  const CsrMatrix a = gen::fd_laplacian_2d(8, 8);
  const auto part = partition::contiguous_partition(a.num_rows(), 4);
  const auto blocks = build_local_blocks(a, part);
  for (const auto& blk : blocks) {
    for (const auto& link : blk.neighbors) {
      // What this block sends to `link.neighbor` must be what the
      // neighbor expects in its recv list for this block, in order.
      const auto& other = blocks[link.neighbor];
      const auto it = std::find_if(
          other.neighbors.begin(), other.neighbors.end(),
          [&](const NeighborLink& l) { return l.neighbor == blk.process; });
      ASSERT_NE(it, other.neighbors.end());
      ASSERT_EQ(link.send_rows.size(), it->recv_slots.size());
      for (std::size_t k = 0; k < link.send_rows.size(); ++k) {
        EXPECT_EQ(link.send_rows[k], other.ghost_cols[it->recv_slots[k]]);
      }
      // Sent rows are owned by the sender.
      for (index_t row : link.send_rows) {
        EXPECT_GE(row, blk.row_begin);
        EXPECT_LT(row, blk.row_end);
      }
    }
  }
}

TEST(LocalBlock, GridNeighborsAreAdjacentSlabs) {
  // Contiguous slabs of a row-major grid touch only adjacent slabs.
  const CsrMatrix a = gen::fd_laplacian_2d(4, 8);
  const auto part = partition::contiguous_partition(a.num_rows(), 4);
  const auto blocks = build_local_blocks(a, part);
  for (const auto& blk : blocks) {
    for (const auto& link : blk.neighbors) {
      EXPECT_LE(std::abs(link.neighbor - blk.process), 1);
    }
  }
}

TEST(LocalBlock, SinglePartHasNoGhosts) {
  const CsrMatrix a = gen::fd_laplacian_2d(3, 3);
  const auto blocks =
      build_local_blocks(a, partition::contiguous_partition(9, 1));
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].num_ghosts(), 0);
  EXPECT_TRUE(blocks[0].neighbors.empty());
}

TEST(LocalBlock, OnePartPerRowGhostsAreNeighbors) {
  const CsrMatrix a = gen::fd_laplacian_1d(5);
  const auto blocks =
      build_local_blocks(a, partition::contiguous_partition(5, 5));
  EXPECT_EQ(blocks[2].num_ghosts(), 2);
  EXPECT_EQ(blocks[0].num_ghosts(), 1);
}

}  // namespace
}  // namespace ajac::distsim
