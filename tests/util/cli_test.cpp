#include "ajac/util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ajac {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_option("n", "100", "problem size");
  cli.add_option("tol", "1e-3", "tolerance");
  cli.add_option("name", "fd", "matrix name");
  cli.add_option("list", "1,2,4", "sweep values");
  cli.add_flag("verbose", "print more");
  return cli;
}

TEST(CliParser, DefaultsApplyWithoutArguments) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("tol"), 1e-3);
  EXPECT_EQ(cli.get_string("name"), "fd");
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(CliParser, EqualsSyntax) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--n=42", "--tol=0.5", "--name=fe"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("tol"), 0.5);
  EXPECT_EQ(cli.get_string("name"), "fe");
}

TEST(CliParser, SpaceSyntax) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--n", "7"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("n"), 7);
}

TEST(CliParser, FlagSetsTrue) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliParser, IntListParses) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--list=3,5,9"};
  ASSERT_TRUE(cli.parse(2, argv));
  const auto v = cli.get_int_list("list");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v[1], 5);
  EXPECT_EQ(v[2], 9);
}

TEST(CliParser, DoubleListParses) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--list=0.5,2.5"};
  ASSERT_TRUE(cli.parse(2, argv));
  const auto v = cli.get_double_list("list");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
}

TEST(CliParser, UnknownOptionThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, MalformedIntThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--n=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(static_cast<void>(cli.get_int("n")), std::invalid_argument);
}

TEST(CliParser, MalformedBoolThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--name=fe"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(static_cast<void>(cli.get_bool("name")), std::invalid_argument);
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, PositionalArgumentRejected) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, MissingValueThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, HelpListsOptions) {
  CliParser cli = make_parser();
  const std::string help = cli.help();
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("problem size"), std::string::npos);
}

}  // namespace
}  // namespace ajac
