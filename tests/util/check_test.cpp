#include "ajac/util/check.hpp"

#include <gtest/gtest.h>

namespace ajac {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(AJAC_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsLogicError) {
  EXPECT_THROW(AJAC_CHECK(false), std::logic_error);
}

TEST(Check, MessageIncludesExpressionAndText) {
  try {
    AJAC_CHECK_MSG(2 < 1, "custom context " << 42);
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
  }
}

TEST(Check, DcheckCompiles) {
  // In release builds AJAC_DCHECK is a no-op; in debug it throws. Either
  // way this must compile and not fire for a true condition.
  EXPECT_NO_THROW(AJAC_DCHECK(true));
}

}  // namespace
}  // namespace ajac
