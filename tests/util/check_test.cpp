#include "ajac/util/check.hpp"

#include <gtest/gtest.h>

namespace ajac {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(AJAC_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsLogicError) {
  EXPECT_THROW(AJAC_CHECK(false), std::logic_error);
}

TEST(Check, MessageIncludesExpressionAndText) {
  try {
    AJAC_CHECK_MSG(2 < 1, "custom context " << 42);
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
  }
}

TEST(Check, DcheckCompiles) {
  // In release builds AJAC_DCHECK is a no-op; in debug it throws. Either
  // way this must compile and not fire for a true condition.
  EXPECT_NO_THROW(AJAC_DCHECK(true));
}

TEST(Check, FailureMessageFormat) {
  // "AJAC_CHECK failed: (<expr>) at <file>:<line>[ — <message>]"
  try {
    AJAC_CHECK(1 == 2);
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("AJAC_CHECK failed: (1 == 2) at "), 0u);
    EXPECT_NE(what.find("check_test.cpp:"), std::string::npos);
  }
}

TEST(DbgCheck, FiresExactlyWhenDebugChecksAreEnabled) {
  // AJAC_ENABLE_DBG_CHECKS (default: !NDEBUG, forced by the sanitizer
  // presets) decides whether the debug tier is live. The constexpr mirror
  // lets one test body cover both build flavors.
  if constexpr (debug_checks_enabled) {
    EXPECT_THROW(AJAC_DBG_CHECK(false), std::logic_error);
    EXPECT_THROW(AJAC_DBG_CHECK_MSG(false, "ctx " << 7), std::logic_error);
  } else {
    EXPECT_NO_THROW(AJAC_DBG_CHECK(false));
    EXPECT_NO_THROW(AJAC_DBG_CHECK_MSG(false, "ctx " << 7));
  }
  EXPECT_NO_THROW(AJAC_DBG_CHECK(true));
  EXPECT_NO_THROW(AJAC_DBG_CHECK_MSG(true, "never built"));
}

TEST(DbgCheck, MessageCarriesStreamedContext) {
  if constexpr (debug_checks_enabled) {
    try {
      AJAC_DBG_CHECK_MSG(false, "row " << 3 << " bad");
      FAIL() << "expected throw";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find("row 3 bad"), std::string::npos);
    }
  }
}

TEST(DbgValidate, RunsValidatorOnlyInDebugBuilds) {
  int runs = 0;
  auto validator = [&runs] { ++runs; };
  (void)validator;  // unused when the debug tier is compiled out
  AJAC_DBG_VALIDATE(validator());
  EXPECT_EQ(runs, debug_checks_enabled ? 1 : 0);
}

TEST(DbgCheck, LegacyAliasTracksDbgCheck) {
  if constexpr (debug_checks_enabled) {
    EXPECT_THROW(AJAC_DCHECK(false), std::logic_error);
  } else {
    EXPECT_NO_THROW(AJAC_DCHECK(false));
  }
}

}  // namespace
}  // namespace ajac
