#include "ajac/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ajac {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double acc = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) acc += rng.uniform(-1.0, 1.0);
  EXPECT_NEAR(acc / samples, 0.0, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t k = rng.uniform_index(17);
    ASSERT_LT(k, 17u);
    seen.insert(k);
  }
  // All 17 buckets hit after 10k draws.
  EXPECT_EQ(seen.size(), 17u);
}

TEST(Rng, UniformIndexSmallRanges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_index(1), 0u);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double mean = 0.0;
  double var = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    const double z = rng.normal();
    mean += z;
    var += z * z;
  }
  mean /= samples;
  var = var / samples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Streams should differ from each other and from the parent.
  bool all_equal = true;
  for (int i = 0; i < 16; ++i) {
    if (child1.next() != child2.next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace ajac
