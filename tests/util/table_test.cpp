#include "ajac/util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ajac {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{42}});
  t.add_row({std::string("b"), 3.5});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.5"), std::string::npos);
}

TEST(Table, CsvRoundTripBasics) {
  Table t({"a", "b"});
  t.add_row({std::int64_t{1}, 2.5});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,b\n1,2.5\n");
}

TEST(Table, CsvQuotesCommasAndQuotes) {
  Table t({"text"});
  t.add_row({std::string("hello, world")});
  t.add_row({std::string("say \"hi\"")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, WrongCellCountThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), std::logic_error);
}

TEST(Table, DoubleFormatConfigurable) {
  Table t({"x"});
  t.set_double_format("%.2e");
  t.add_row({12345.678});
  EXPECT_NE(t.to_csv().find("1.23e+04"), std::string::npos);
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({std::int64_t{1}, std::int64_t{2}, std::int64_t{3}});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, WriteCsvCreatesFile) {
  Table t({"k"});
  t.add_row({std::int64_t{9}});
  const std::string path = ::testing::TempDir() + "/ajac_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k");
  std::getline(in, line);
  EXPECT_EQ(line, "9");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ajac
