#include "ajac/util/timer.hpp"

#include <gtest/gtest.h>

namespace ajac {
namespace {

TEST(WallTimer, TimeIsMonotoneNonNegative) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer t;
  spin_wait_us(200.0);
  const double before = t.seconds();
  t.reset();
  const double after = t.seconds();
  EXPECT_LT(after, before);
}

TEST(WallTimer, UnitsAreConsistent) {
  WallTimer t;
  spin_wait_us(100.0);
  const double s = t.seconds();
  const double ms = t.milliseconds();
  const double us = t.microseconds();
  EXPECT_NEAR(ms, s * 1e3, s * 1e3 * 0.5);
  EXPECT_NEAR(us, s * 1e6, s * 1e6 * 0.5);
}

TEST(SpinWait, WaitsAtLeastRequested) {
  WallTimer t;
  spin_wait_us(500.0);
  EXPECT_GE(t.microseconds(), 500.0);
}

TEST(SpinWait, ZeroAndNegativeReturnImmediately) {
  WallTimer t;
  spin_wait_us(0.0);
  spin_wait_us(-10.0);
  EXPECT_LT(t.microseconds(), 1000.0);
}

}  // namespace
}  // namespace ajac
