// Property suite for MultiVector and the mv:: batch kernels.
//
// The load-bearing property: padding lanes (lead > k) are dead. Every
// kernel must iterate lanes [0, k) only, so poisoning the padding with NaN
// — which contaminates any arithmetic it touches — must leave every result
// bitwise identical to the per-column scalar reference computed with the
// vec:: kernels. Shapes sweep k = 1, n = 1, exact lead (lead == k), the
// default padded lead, and oversized explicit leads, across ~200 seeded
// draws.

#include "ajac/sparse/multi_vector.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

struct Shape {
  index_t n;
  index_t k;
  index_t lead;  ///< 0 = default lead
};

/// ~200 shapes: corner cases plus seeded random draws, each in exact-lead
/// and padded-lead variants.
std::vector<Shape> shapes(std::uint64_t seed) {
  std::vector<Shape> out = {
      {1, 1, 0},  {1, 1, 1},  {1, 1, 9},   {1, 8, 0},  {1, 3, 3},
      {2, 1, 0},  {7, 1, 5},  {5, 5, 5},   {5, 5, 0},  {3, 16, 0},
      {17, 2, 2}, {17, 2, 0}, {17, 2, 11}, {64, 8, 8}, {64, 8, 0},
  };
  Rng rng(seed);
  while (out.size() < 200) {
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(40));
    const index_t k = 1 + static_cast<index_t>(rng.uniform_index(12));
    Shape s{n, k, 0};
    switch (rng.uniform_index(3)) {
      case 0: s.lead = 0; break;                                   // default
      case 1: s.lead = k; break;                                   // exact
      default:
        s.lead = k + 1 + static_cast<index_t>(rng.uniform_index(9));
    }
    out.push_back(s);
  }
  return out;
}

MultiVector make(const Shape& s) {
  return s.lead == 0 ? MultiVector(s.n, s.k)
                     : MultiVector(s.n, s.k, s.lead);
}

void fill_random(MultiVector& m, Rng& rng) {
  for (index_t i = 0; i < m.num_rows(); ++i) {
    for (index_t c = 0; c < m.num_cols(); ++c) {
      m(i, c) = rng.uniform(-1.0, 1.0);
    }
  }
}

/// Overwrite every padding lane (columns [k, lead) of each row) with NaN.
void poison_padding(MultiVector& m) {
  const index_t k = m.num_cols();
  const index_t lead = m.lead();
  std::span<double> raw = m.raw();
  for (index_t i = 0; i < m.num_rows(); ++i) {
    for (index_t c = k; c < lead; ++c) {
      raw[static_cast<std::size_t>(i) * static_cast<std::size_t>(lead) +
          static_cast<std::size_t>(c)] = std::nan("");
    }
  }
}

void expect_bits(double actual, double expected, const char* what, index_t i,
                 index_t c) {
  ASSERT_EQ(std::bit_cast<std::uint64_t>(actual),
            std::bit_cast<std::uint64_t>(expected))
      << what << " diverged at (" << i << ", " << c << "): " << actual
      << " vs " << expected;
}

TEST(PropMultiVector, AccessorsRoundTripAndColumnsExtract) {
  Rng rng(ajac::testing::test_seed(111));
  for (const Shape& s : shapes(ajac::testing::test_seed(113))) {
    SCOPED_TRACE(::testing::Message()
                 << "n=" << s.n << " k=" << s.k << " lead=" << s.lead);
    MultiVector m = make(s);
    EXPECT_GE(m.lead(), m.num_cols());
    fill_random(m, rng);
    poison_padding(m);
    const Vector col0 = m.column(0);
    for (index_t i = 0; i < s.n; ++i) {
      expect_bits(col0[static_cast<std::size_t>(i)], m(i, 0), "column", i, 0);
      EXPECT_FALSE(std::isnan(m.row(i)[m.num_cols() - 1]));
    }
    // set_column writes through the same lanes column() reads.
    Vector v(static_cast<std::size_t>(s.n));
    vec::fill_uniform(v, rng);
    m.set_column(s.k - 1, v);
    const Vector back = m.column(s.k - 1);
    for (index_t i = 0; i < s.n; ++i) {
      expect_bits(back[static_cast<std::size_t>(i)],
                  v[static_cast<std::size_t>(i)], "set_column", i, s.k - 1);
    }
  }
}

TEST(PropMultiVector, AxpyMatchesPerColumnScalarDespitePoison) {
  Rng rng(ajac::testing::test_seed(115));
  for (const Shape& s : shapes(ajac::testing::test_seed(117))) {
    SCOPED_TRACE(::testing::Message()
                 << "n=" << s.n << " k=" << s.k << " lead=" << s.lead);
    MultiVector x = make(s);
    MultiVector y = make(s);
    fill_random(x, rng);
    fill_random(y, rng);
    const double alpha = rng.uniform(-2.0, 2.0);

    // Scalar reference per column, computed before the batch op mutates y.
    std::vector<Vector> expected;
    for (index_t c = 0; c < s.k; ++c) {
      Vector yc = y.column(c);
      const Vector xc = x.column(c);
      vec::axpy(alpha, xc, yc);
      expected.push_back(std::move(yc));
    }

    poison_padding(x);
    poison_padding(y);
    mv::axpy(alpha, x, y);
    for (index_t c = 0; c < s.k; ++c) {
      for (index_t i = 0; i < s.n; ++i) {
        expect_bits(y(i, c),
                    expected[static_cast<std::size_t>(c)]
                            [static_cast<std::size_t>(i)],
                    "axpy", i, c);
      }
    }
  }
}

TEST(PropMultiVector, NormsMatchPerColumnScalarDespitePoison) {
  Rng rng(ajac::testing::test_seed(119));
  for (const Shape& s : shapes(ajac::testing::test_seed(121))) {
    SCOPED_TRACE(::testing::Message()
                 << "n=" << s.n << " k=" << s.k << " lead=" << s.lead);
    MultiVector x = make(s);
    MultiVector y = make(s);
    fill_random(x, rng);
    fill_random(y, rng);
    poison_padding(x);
    poison_padding(y);

    std::vector<double> n1(static_cast<std::size_t>(s.k));
    std::vector<double> n2(static_cast<std::size_t>(s.k));
    std::vector<double> ninf(static_cast<std::size_t>(s.k));
    std::vector<double> diff(static_cast<std::size_t>(s.k));
    mv::colwise_norm1(x, n1);
    mv::colwise_norm2(x, n2);
    mv::colwise_norm_inf(x, ninf);
    mv::colwise_max_abs_diff(x, y, diff);

    for (index_t c = 0; c < s.k; ++c) {
      const Vector xc = x.column(c);
      const Vector yc = y.column(c);
      const auto uc = static_cast<std::size_t>(c);
      expect_bits(n1[uc], vec::norm1(xc), "norm1", -1, c);
      expect_bits(n2[uc], vec::norm2(xc), "norm2", -1, c);
      expect_bits(ninf[uc], vec::norm_inf(xc), "norm_inf", -1, c);
      expect_bits(diff[uc], vec::max_abs_diff(xc, yc), "max_abs_diff", -1, c);
    }
  }
}

TEST(PropMultiVector, ResidualMatchesPerColumnScalarDespitePoison) {
  Rng rng(ajac::testing::test_seed(123));
  const CsrMatrix a = gen::fd_laplacian_2d(6, 7);  // n = 42
  const index_t n = a.num_rows();
  for (const index_t k : {1, 2, 3, 8, 11}) {
    for (const index_t pad : {0, 1, 5}) {
      SCOPED_TRACE(::testing::Message() << "k=" << k << " pad=" << pad);
      const index_t lead = pad == 0 ? MultiVector::default_lead(k) : k + pad;
      MultiVector x(n, k, lead);
      MultiVector b(n, k, lead);
      MultiVector r(n, k, lead);
      fill_random(x, rng);
      fill_random(b, rng);
      poison_padding(x);
      poison_padding(b);
      poison_padding(r);
      mv::residual(a, x, b, r);
      for (index_t c = 0; c < k; ++c) {
        const Vector xc = x.column(c);
        const Vector bc = b.column(c);
        Vector rc(static_cast<std::size_t>(n));
        a.residual(xc, bc, rc);
        for (index_t i = 0; i < n; ++i) {
          expect_bits(r(i, c), rc[static_cast<std::size_t>(i)], "residual", i,
                      c);
        }
      }
    }
  }
}

TEST(PropMultiVector, BroadcastReplicatesEveryColumn) {
  Rng rng(ajac::testing::test_seed(125));
  Vector v(37);
  vec::fill_uniform(v, rng);
  for (const index_t k : {1, 2, 8, 13}) {
    const MultiVector m = MultiVector::broadcast(v, k);
    ASSERT_EQ(m.num_rows(), static_cast<index_t>(v.size()));
    ASSERT_EQ(m.num_cols(), k);
    for (index_t c = 0; c < k; ++c) {
      for (index_t i = 0; i < m.num_rows(); ++i) {
        expect_bits(m(i, c), v[static_cast<std::size_t>(i)], "broadcast", i,
                    c);
      }
    }
  }
}

}  // namespace
}  // namespace ajac
