#include "ajac/sparse/permute.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"

namespace ajac {
namespace {

TEST(Permutation, IdentityLeavesEverythingAlone) {
  const CsrMatrix a = gen::fd_laplacian_2d(3, 3);
  const Permutation p = Permutation::identity(a.num_rows());
  EXPECT_TRUE(p.apply_symmetric(a) == a);
  Vector x{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(p.apply(x), x);
}

TEST(Permutation, RejectsNonBijection) {
  EXPECT_THROW(Permutation({0, 0, 1}), std::logic_error);
  EXPECT_THROW(Permutation({0, 5}), std::logic_error);
}

TEST(Permutation, InverseComposesToIdentity) {
  const Permutation p({2, 0, 3, 1});
  const Permutation pinv = p.inverse();
  Vector x{10, 20, 30, 40};
  EXPECT_EQ(pinv.apply(p.apply(x)), x);
  EXPECT_EQ(p.apply_inverse(p.apply(x)), x);
}

TEST(Permutation, NewToOldOldToNewConsistent) {
  const Permutation p({2, 0, 1});
  for (index_t i = 0; i < 3; ++i) {
    EXPECT_EQ(p.old_to_new(p.new_to_old(i)), i);
  }
}

TEST(Permutation, SymmetricPermutationPreservesSpectrumAction) {
  // (P A P^T)(P x) == P (A x) for random x.
  const CsrMatrix a = gen::fd_laplacian_2d(5, 4);
  Rng rng(17);
  std::vector<index_t> order(static_cast<std::size_t>(a.num_rows()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<index_t>(i);
  }
  for (std::size_t i = order.size() - 1; i > 0; --i) {
    std::swap(order[i], order[rng.uniform_index(i + 1)]);
  }
  const Permutation p(order);
  const CsrMatrix pa = p.apply_symmetric(a);
  EXPECT_TRUE(pa.has_sorted_rows());
  EXPECT_TRUE(pa.is_symmetric(0.0));
  EXPECT_EQ(pa.num_nonzeros(), a.num_nonzeros());

  Vector x(static_cast<std::size_t>(a.num_rows()));
  vec::fill_uniform(x, rng);
  Vector ax(x.size());
  a.spmv(x, ax);
  const Vector px = p.apply(x);
  Vector papx(x.size());
  pa.spmv(px, papx);
  EXPECT_NEAR(vec::max_abs_diff(papx, p.apply(ax)), 0.0, 1e-14);
}

TEST(Permutation, EntryMapping) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 3);
  const Permutation p({5, 3, 1, 0, 2, 4, 7, 6, 9, 8, 11, 10});
  const CsrMatrix pa = p.apply_symmetric(a);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    for (index_t j = 0; j < a.num_cols(); ++j) {
      EXPECT_DOUBLE_EQ(pa.at(i, j), a.at(p.new_to_old(i), p.new_to_old(j)));
    }
  }
}

}  // namespace
}  // namespace ajac
