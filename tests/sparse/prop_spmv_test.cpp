// Property-based SpMV tests: serial and OpenMP kernels against a dense
// reference on ~200 seeded random matrices, plus algebraic identities
// (linearity, transpose adjointness, residual consistency).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/dense.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

constexpr int kCases = 200;

CsrMatrix random_matrix(Rng& rng, index_t rows, index_t cols) {
  CooBuilder coo(rows, cols);
  const auto entries = rng.uniform_index(
      static_cast<std::uint64_t>(rows * cols) / 2 + 1);
  for (std::uint64_t k = 0; k < entries; ++k) {
    coo.add(static_cast<index_t>(rng.uniform_index(rows)),
            static_cast<index_t>(rng.uniform_index(cols)),
            rng.uniform(-2.0, 2.0));
  }
  return coo.to_csr();
}

Vector random_vector(Rng& rng, index_t n) {
  Vector x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

Vector dense_spmv(const CsrMatrix& a, const Vector& x) {
  const DenseMatrix d = DenseMatrix::from_csr(a);
  Vector y(static_cast<std::size_t>(a.num_rows()), 0.0);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    double acc = 0.0;
    for (index_t j = 0; j < a.num_cols(); ++j) acc += d(i, j) * x[j];
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

TEST(PropSpmv, SerialAndOmpMatchDenseReference) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(5000 + static_cast<std::uint64_t>(c)));
    const index_t rows = 1 + static_cast<index_t>(rng.uniform_index(24));
    const index_t cols = 1 + static_cast<index_t>(rng.uniform_index(24));
    const CsrMatrix a = random_matrix(rng, rows, cols);
    const Vector x = random_vector(rng, cols);
    const Vector ref = dense_spmv(a, x);
    Vector y(static_cast<std::size_t>(rows));
    a.spmv(x, y);
    Vector y_omp(static_cast<std::size_t>(rows));
    a.spmv_omp(x, y_omp);
    for (index_t i = 0; i < rows; ++i) {
      // The dense loop sums in column order over zeros too; allow
      // rounding-level difference from the sparse accumulation order.
      ASSERT_NEAR(y[i], ref[i], 1e-12);
      // Same row, same entry order => serial and OMP agree bitwise.
      ASSERT_EQ(y_omp[i], y[i]);
      ASSERT_EQ(a.row_dot(i, x), y[i]);
    }
  }
}

TEST(PropSpmv, LinearityInTheVector) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(6000 + static_cast<std::uint64_t>(c)));
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(20));
    const CsrMatrix a = random_matrix(rng, n, n);
    const Vector x = random_vector(rng, n);
    const Vector y = random_vector(rng, n);
    const double alpha = rng.uniform(-2.0, 2.0);
    Vector xy(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) xy[i] = alpha * x[i] + y[i];
    Vector a_xy(static_cast<std::size_t>(n));
    a.spmv(xy, a_xy);
    Vector ax(static_cast<std::size_t>(n));
    a.spmv(x, ax);
    Vector ay(static_cast<std::size_t>(n));
    a.spmv(y, ay);
    for (index_t i = 0; i < n; ++i) {
      ASSERT_NEAR(a_xy[i], alpha * ax[i] + ay[i], 1e-12);
    }
  }
}

TEST(PropSpmv, TransposeIsTheAdjoint) {
  // <A x, y> == <x, A^T y> for all x, y.
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(7000 + static_cast<std::uint64_t>(c)));
    const index_t rows = 1 + static_cast<index_t>(rng.uniform_index(16));
    const index_t cols = 1 + static_cast<index_t>(rng.uniform_index(16));
    const CsrMatrix a = random_matrix(rng, rows, cols);
    const CsrMatrix at = a.transpose();
    ASSERT_EQ(at.num_rows(), cols);
    ASSERT_EQ(at.num_cols(), rows);
    ASSERT_EQ(at.transpose(), a);  // involution
    const Vector x = random_vector(rng, cols);
    const Vector y = random_vector(rng, rows);
    Vector ax(static_cast<std::size_t>(rows));
    a.spmv(x, ax);
    Vector aty(static_cast<std::size_t>(cols));
    at.spmv(y, aty);
    double lhs = 0.0;
    for (index_t i = 0; i < rows; ++i) lhs += ax[i] * y[i];
    double rhs = 0.0;
    for (index_t j = 0; j < cols; ++j) rhs += x[j] * aty[j];
    ASSERT_NEAR(lhs, rhs, 1e-10);
  }
}

TEST(PropSpmv, ResidualIsBMinusAx) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(8000 + static_cast<std::uint64_t>(c)));
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(20));
    const CsrMatrix a = random_matrix(rng, n, n);
    const Vector x = random_vector(rng, n);
    const Vector b = random_vector(rng, n);
    Vector r(static_cast<std::size_t>(n));
    a.residual(x, b, r);
    Vector ax(static_cast<std::size_t>(n));
    a.spmv(x, ax);
    for (index_t i = 0; i < n; ++i) {
      // residual() subtracts entry by entry from b while spmv sums first;
      // the accumulation orders differ, so compare to rounding level.
      ASSERT_NEAR(r[i], b[i] - ax[i], 1e-12);
    }
    // Residual at an exact "solution" of the homogeneous problem: r == b
    // when x == 0.
    const Vector zero(static_cast<std::size_t>(n), 0.0);
    a.residual(zero, b, r);
    for (index_t i = 0; i < n; ++i) ASSERT_EQ(r[i], b[i]);
  }
}

}  // namespace
}  // namespace ajac
