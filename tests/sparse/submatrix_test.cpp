#include "ajac/sparse/submatrix.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac {
namespace {

TEST(Submatrix, PrincipalSubmatrixEntries) {
  const CsrMatrix a = gen::fd_laplacian_2d(3, 3);
  const std::vector<index_t> keep{0, 2, 4, 8};
  const CsrMatrix s = principal_submatrix(a, keep);
  EXPECT_EQ(s.num_rows(), 4);
  for (index_t r = 0; r < 4; ++r) {
    for (index_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(s.at(r, c), a.at(keep[r], keep[c]));
    }
  }
}

TEST(Submatrix, KeepAllIsIdentityOperation) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 2);
  std::vector<index_t> keep(static_cast<std::size_t>(a.num_rows()));
  for (std::size_t i = 0; i < keep.size(); ++i) {
    keep[i] = static_cast<index_t>(i);
  }
  EXPECT_TRUE(principal_submatrix(a, keep) == a);
}

TEST(Submatrix, NonIncreasingKeepRejected) {
  const CsrMatrix a = gen::fd_laplacian_2d(2, 2);
  EXPECT_THROW(principal_submatrix(a, {1, 0}), std::logic_error);
}

TEST(Submatrix, RemovingSeparatorDecouples) {
  // 1D path 0-1-2-3-4; removing node 2 leaves components {0,1} and {3,4}.
  const CsrMatrix a = gen::fd_laplacian_1d(5);
  const auto keep = complement_rows(5, {2});
  const CsrMatrix s = principal_submatrix(a, keep);
  index_t num = 0;
  const auto comp = connected_components(s, &num);
  EXPECT_EQ(num, 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Submatrix, ConnectedGraphHasOneComponent) {
  index_t num = 0;
  static_cast<void>(connected_components(gen::fd_laplacian_2d(4, 4), &num));
  EXPECT_EQ(num, 1);
}

TEST(Submatrix, ComplementRows) {
  const auto keep = complement_rows(6, {1, 4});
  ASSERT_EQ(keep.size(), 4u);
  EXPECT_EQ(keep[0], 0);
  EXPECT_EQ(keep[1], 2);
  EXPECT_EQ(keep[2], 3);
  EXPECT_EQ(keep[3], 5);
}

TEST(Submatrix, ComplementOfNothingIsEverything) {
  const auto keep = complement_rows(3, {});
  EXPECT_EQ(keep.size(), 3u);
}

TEST(Submatrix, GridSeparatorCreatesManyBlocks) {
  // Removing a full column of a 5x5 grid splits it into two halves
  // (Sec. IV-D: removing delayed rows can decouple the graph).
  const index_t nx = 5, ny = 5;
  const CsrMatrix a = gen::fd_laplacian_2d(nx, ny);
  std::vector<index_t> separator;
  for (index_t j = 0; j < ny; ++j) separator.push_back(j * nx + 2);
  const auto keep = complement_rows(nx * ny, separator);
  index_t num = 0;
  static_cast<void>(connected_components(principal_submatrix(a, keep), &num));
  EXPECT_EQ(num, 2);
}

}  // namespace
}  // namespace ajac
