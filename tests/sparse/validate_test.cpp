#include "ajac/sparse/validate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac::validate {
namespace {

// The CsrMatrix constructor rejects malformed row_ptr and out-of-range
// columns outright, so corrupted inputs here target the invariants the
// constructor deliberately leaves unchecked: row ordering, diagonal
// presence, and value finiteness (values are mutable after construction).

CsrMatrix unsorted_row_matrix() {
  // Row 0 stores columns {1, 0} — legal for the constructor, but breaks
  // the binary-searched at() and every kernel that assumes sorted rows.
  return CsrMatrix(2, 2, {0, 2, 4}, {1, 0, 0, 1}, {2.0, 1.0, 1.0, 2.0});
}

CsrMatrix missing_diagonal_matrix() {
  // Row 1 has no (1,1) entry.
  return CsrMatrix(2, 2, {0, 2, 3}, {0, 1, 0}, {4.0, 1.0, 1.0});
}

TEST(ValidateCsr, AcceptsGeneratedOperators) {
  const CsrMatrix a = gen::fd_laplacian_2d(5, 4);
  EXPECT_NO_THROW(csr_structure(a));
  EXPECT_NO_THROW(csr_structure(a, {.require_sorted_rows = true,
                                    .require_diagonal = true,
                                    .require_finite = true,
                                    .require_square = true}));
}

TEST(ValidateCsr, RejectsUnsortedRows) {
  const CsrMatrix a = unsorted_row_matrix();
  EXPECT_THROW(csr_structure(a), std::logic_error);
  // The same matrix passes once the sortedness requirement is waived.
  EXPECT_NO_THROW(csr_structure(a, {.require_sorted_rows = false}));
}

TEST(ValidateCsr, UnsortedFailureNamesRowAndColumn) {
  try {
    csr_structure(unsorted_row_matrix());
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row 0"), std::string::npos);
    EXPECT_NE(what.find("not strictly increasing"), std::string::npos);
  }
}

TEST(ValidateCsr, DuplicateColumnsCountAsUnsorted) {
  const CsrMatrix a(1, 2, {0, 2}, {1, 1}, {1.0, 2.0});
  EXPECT_THROW(csr_structure(a), std::logic_error);
}

TEST(ValidateCsr, RejectsMissingDiagonalOnlyWhenRequired) {
  const CsrMatrix a = missing_diagonal_matrix();
  EXPECT_NO_THROW(csr_structure(a));
  EXPECT_THROW(csr_structure(a, {.require_diagonal = true}),
               std::logic_error);
}

TEST(ValidateCsr, RejectsNonFiniteValues) {
  CsrMatrix a = gen::fd_laplacian_2d(3, 3);
  EXPECT_NO_THROW(csr_structure(a));
  a.mutable_values()[4] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(csr_structure(a), std::logic_error);
  a.mutable_values()[4] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(csr_structure(a), std::logic_error);
  EXPECT_NO_THROW(csr_structure(a, {.require_finite = false}));
}

TEST(ValidateCsr, RejectsRectangularWhenSquareRequired) {
  const CsrMatrix a(2, 3, {0, 1, 2}, {0, 1}, {1.0, 1.0});
  EXPECT_NO_THROW(csr_structure(a, {.require_diagonal = true}));
  EXPECT_THROW(csr_structure(a, {.require_square = true}),
               std::logic_error);
}

TEST(ValidateFinite, AcceptsFiniteAndRejectsNanInfWithIndex) {
  const Vector good = {0.0, -1.5, 1e300};
  EXPECT_NO_THROW(finite(good, "good"));

  Vector bad = good;
  bad[1] = std::numeric_limits<double>::quiet_NaN();
  try {
    finite(bad, "rhs");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rhs[1]"), std::string::npos);
    EXPECT_NE(what.find("non-finite"), std::string::npos);
  }

  bad[1] = -std::numeric_limits<double>::infinity();
  EXPECT_THROW(finite(bad, "rhs"), std::logic_error);
}

}  // namespace
}  // namespace ajac::validate
