#include "ajac/sparse/stats.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac {
namespace {

TEST(MatrixStatsTest, GridLaplacianBasics) {
  const CsrMatrix a = gen::fd_laplacian_2d(5, 4);
  const MatrixStats s = compute_stats(a);
  EXPECT_EQ(s.num_rows, 20);
  EXPECT_EQ(s.num_nonzeros, a.num_nonzeros());
  EXPECT_EQ(s.bandwidth, 5);  // +-nx coupling
  EXPECT_EQ(s.min_row_nnz, 3);  // corner
  EXPECT_EQ(s.max_row_nnz, 5);  // interior
  EXPECT_TRUE(s.structurally_symmetric);
  // Negative off-diagonals only.
  EXPECT_DOUBLE_EQ(s.positive_offdiag_fraction, 0.0);
  // W.D.D.: diagonal over off-sum >= 1 on every row.
  EXPECT_GE(s.diag_dominance_min, 1.0);
}

TEST(MatrixStatsTest, FeMatrixHasPositiveOffdiagonals) {
  const MatrixStats s = compute_stats(gen::paper_fe_3081());
  EXPECT_GT(s.positive_offdiag_fraction, 0.05);
  EXPECT_LT(s.diag_dominance_min, 1.0);  // some rows lose dominance
  EXPECT_TRUE(s.structurally_symmetric);
}

TEST(MatrixStatsTest, ProfileOfDiagonalMatrixIsZero) {
  const CsrMatrix eye = csr_identity(7);
  const MatrixStats s = compute_stats(eye);
  EXPECT_EQ(s.profile, 0);
  EXPECT_EQ(s.bandwidth, 0);
  EXPECT_DOUBLE_EQ(s.avg_row_nnz, 1.0);
}

TEST(MatrixStatsTest, DetectsStructuralAsymmetry) {
  // Entry (0,1) present, (1,0) absent.
  const CsrMatrix a(2, 2, {0, 2, 3}, {0, 1, 1}, {1.0, 2.0, 1.0});
  EXPECT_FALSE(compute_stats(a).structurally_symmetric);
}

TEST(MatrixStatsTest, Profile1dPath) {
  // Row i of the 1D Laplacian starts at column i-1 => profile = n-1.
  const MatrixStats s = compute_stats(gen::fd_laplacian_1d(9));
  EXPECT_EQ(s.profile, 8);
  EXPECT_EQ(s.bandwidth, 1);
}

TEST(RowDegreeHistogram, CountsDegrees) {
  const CsrMatrix a = gen::fd_laplacian_2d(3, 3);
  const auto hist = row_degree_histogram(a, 6);
  // 3x3 grid: 4 corners (3 nnz), 4 edges (4 nnz), 1 center (5 nnz).
  EXPECT_EQ(hist[3], 4);
  EXPECT_EQ(hist[4], 4);
  EXPECT_EQ(hist[5], 1);
  EXPECT_EQ(hist[6], 0);
}

TEST(RowDegreeHistogram, CapBucketCollectsTail) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 4);
  const auto hist = row_degree_histogram(a, 3);
  index_t total = 0;
  for (index_t h : hist) total += h;
  EXPECT_EQ(total, 16);
  EXPECT_EQ(hist[3], 16);  // all rows have >= 3 nnz
}

}  // namespace
}  // namespace ajac
