// Property-based permutation / principal-submatrix tests on ~200 seeded
// cases: P A P^T entry mapping, inverse round trips, vector consistency,
// and submatrix extraction against the dense definition. These are the
// invariants the partitioner and the Sec. IV-C delayed-row analysis lean
// on.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/permute.hpp"
#include "ajac/sparse/submatrix.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

constexpr int kCases = 200;

CsrMatrix random_square(Rng& rng, index_t n) {
  CooBuilder coo(n, n);
  const auto entries = rng.uniform_index(
      static_cast<std::uint64_t>(n * n) / 2 + 1);
  for (std::uint64_t k = 0; k < entries; ++k) {
    coo.add(static_cast<index_t>(rng.uniform_index(n)),
            static_cast<index_t>(rng.uniform_index(n)),
            rng.uniform(-2.0, 2.0));
  }
  return coo.to_csr();
}

Permutation random_permutation(Rng& rng, index_t n) {
  std::vector<index_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  for (std::size_t i = p.size(); i > 1; --i) {
    std::swap(p[i - 1], p[rng.uniform_index(i)]);
  }
  return Permutation(std::move(p));
}

Vector random_vector(Rng& rng, index_t n) {
  Vector x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

TEST(PropPermute, SymmetricApplyMapsEntriesExactly) {
  // (P A P^T)_{ij} == A_{new_to_old(i), new_to_old(j)}, checked densely.
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(9000 + static_cast<std::uint64_t>(c)));
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(14));
    const CsrMatrix a = random_square(rng, n);
    const Permutation perm = random_permutation(rng, n);
    const CsrMatrix pa = perm.apply_symmetric(a);
    ASSERT_EQ(pa.num_rows(), n);
    ASSERT_EQ(pa.num_nonzeros(), a.num_nonzeros());
    ASSERT_TRUE(pa.has_sorted_rows());
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        ASSERT_EQ(pa.at(i, j), a.at(perm.new_to_old(i), perm.new_to_old(j)));
      }
    }
  }
}

TEST(PropPermute, InverseUndoesApply) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(10000 + static_cast<std::uint64_t>(c)));
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(20));
    const CsrMatrix a = random_square(rng, n);
    const Permutation perm = random_permutation(rng, n);
    const Permutation inv = perm.inverse();
    EXPECT_EQ(inv.apply_symmetric(perm.apply_symmetric(a)), a);
    const Vector x = random_vector(rng, n);
    const Vector round1 = perm.apply_inverse(perm.apply(x));
    const Vector round2 = inv.apply(perm.apply(x));
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(round1[i], x[i]);
      ASSERT_EQ(round2[i], x[i]);
    }
    // old_to_new and new_to_old are mutually inverse index maps.
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(perm.old_to_new(perm.new_to_old(i)), i);
      ASSERT_EQ(inv.new_to_old(i), perm.old_to_new(i));
    }
  }
}

TEST(PropPermute, SpmvCommutesWithPermutation) {
  // P (A x) == (P A P^T)(P x): permuting the system and the vector gives
  // the permuted product. This is the identity the partitioned solvers
  // rely on when they reorder a problem part-major and solve the permuted
  // system instead.
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(11000 + static_cast<std::uint64_t>(c)));
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(18));
    const CsrMatrix a = random_square(rng, n);
    const Permutation perm = random_permutation(rng, n);
    const Vector x = random_vector(rng, n);
    Vector ax(static_cast<std::size_t>(n));
    a.spmv(x, ax);
    const Vector lhs = perm.apply(ax);
    const CsrMatrix pa = perm.apply_symmetric(a);
    const Vector px = perm.apply(x);
    Vector rhs(static_cast<std::size_t>(n));
    pa.spmv(px, rhs);
    for (index_t i = 0; i < n; ++i) {
      // Row entries are re-sorted by the permutation, so the accumulation
      // order differs; rounding-level tolerance.
      ASSERT_NEAR(lhs[i], rhs[i], 1e-12);
    }
  }
}

TEST(PropSubmatrix, PrincipalSubmatrixMatchesDenseDefinition) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(12000 + static_cast<std::uint64_t>(c)));
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(16));
    const CsrMatrix a = random_square(rng, n);
    // Random strictly increasing non-empty keep set.
    std::vector<index_t> keep;
    for (index_t i = 0; i < n; ++i) {
      if (rng.uniform() < 0.5) keep.push_back(i);
    }
    if (keep.empty()) keep.push_back(static_cast<index_t>(rng.uniform_index(n)));
    const CsrMatrix sub = principal_submatrix(a, keep);
    const auto m = static_cast<index_t>(keep.size());
    ASSERT_EQ(sub.num_rows(), m);
    ASSERT_EQ(sub.num_cols(), m);
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < m; ++j) {
        ASSERT_EQ(sub.at(i, j), a.at(keep[i], keep[j]));
      }
    }
  }
}

TEST(PropSubmatrix, KeepEverythingIsIdentityAndComplementPartitions) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(13000 + static_cast<std::uint64_t>(c)));
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(16));
    const CsrMatrix a = random_square(rng, n);
    std::vector<index_t> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), index_t{0});
    EXPECT_EQ(principal_submatrix(a, all), a);

    std::vector<index_t> removed;
    for (index_t i = 0; i < n; ++i) {
      if (rng.uniform() < 0.3) removed.push_back(i);
    }
    const std::vector<index_t> kept = complement_rows(n, removed);
    ASSERT_EQ(kept.size() + removed.size(), static_cast<std::size_t>(n));
    ASSERT_TRUE(std::is_sorted(kept.begin(), kept.end()));
    std::vector<index_t> merged = kept;
    merged.insert(merged.end(), removed.begin(), removed.end());
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(merged, all);
  }
}

}  // namespace
}  // namespace ajac
