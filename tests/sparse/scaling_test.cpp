#include "ajac/sparse/scaling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/properties.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"

namespace ajac {
namespace {

TEST(Scaling, SymmetricScalingGivesUnitDiagonal) {
  const CsrMatrix a = gen::fd_laplacian_2d(6, 7);
  const CsrMatrix s = scale_to_unit_diagonal(a);
  EXPECT_TRUE(has_unit_diagonal(s, 1e-14));
  EXPECT_TRUE(s.is_symmetric(1e-14));
}

TEST(Scaling, SymmetricScalingPreservesWdd) {
  // D^{-1/2} A D^{-1/2} of a W.D.D. matrix with equal diagonal stays
  // W.D.D.; for the FD Laplacian the scaled matrix is I - adjacency/4.
  const CsrMatrix s = scale_to_unit_diagonal(gen::fd_laplacian_2d(5, 5));
  EXPECT_TRUE(is_weakly_diag_dominant(s));
  EXPECT_DOUBLE_EQ(s.at(0, 1), -0.25);
}

TEST(Scaling, SymmetricScalingTransformsRhs) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 4);
  Rng rng(3);
  Vector b(static_cast<std::size_t>(a.num_rows()));
  vec::fill_uniform(b, rng);
  Vector b_scaled = b;
  const CsrMatrix s = scale_to_unit_diagonal(a, &b_scaled);
  // Solution mapping: if s y = b_scaled then x = D^{-1/2} y solves A x = b.
  // Verify on a concrete y by substituting back.
  Vector y(b.size(), 1.0);
  Vector sy(b.size());
  s.spmv(y, sy);
  // A (D^{-1/2} y) must equal D^{1/2} (s y).
  const Vector d = a.diagonal();
  Vector x(b.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = y[i] / std::sqrt(d[i]);
  Vector ax(b.size());
  a.spmv(x, ax);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(ax[i], std::sqrt(d[i]) * sy[i], 1e-12);
  }
}

TEST(Scaling, RowScalingGivesUnitDiagonalAndKeepsSolution) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 5);
  Rng rng(5);
  Vector x(static_cast<std::size_t>(a.num_rows()));
  vec::fill_uniform(x, rng);
  Vector b(x.size());
  a.spmv(x, b);
  Vector b_scaled = b;
  const CsrMatrix s = scale_rows_by_diagonal(a, &b_scaled);
  EXPECT_TRUE(has_unit_diagonal(s, 1e-14));
  // Same solution: s x = b_scaled.
  Vector sx(x.size());
  s.spmv(x, sx);
  EXPECT_NEAR(vec::max_abs_diff(sx, b_scaled), 0.0, 1e-13);
}

TEST(Scaling, JacobiIterationMatrixHasZeroDiagonal) {
  const CsrMatrix g = jacobi_iteration_matrix(gen::fd_laplacian_2d(4, 4));
  for (index_t i = 0; i < g.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(g.at(i, i), 0.0);
  }
  EXPECT_DOUBLE_EQ(g.at(0, 1), 0.25);
}

TEST(Scaling, JacobiIterationMatrixIsIMinusDInvA) {
  const CsrMatrix a = gen::fd_laplacian_2d(3, 4);
  const CsrMatrix g = jacobi_iteration_matrix(a);
  // x - D^{-1} A x == G x for random x.
  Rng rng(6);
  Vector x(static_cast<std::size_t>(a.num_rows()));
  vec::fill_uniform(x, rng);
  Vector ax(x.size());
  Vector gx(x.size());
  a.spmv(x, ax);
  g.spmv(x, gx);
  const Vector d = a.diagonal();
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(gx[i], x[i] - ax[i] / d[i], 1e-13);
  }
}

TEST(Scaling, EntrywiseAbs) {
  const CsrMatrix a(2, 2, {0, 2, 3}, {0, 1, 1}, {-1.0, 2.0, -3.0});
  const CsrMatrix b = entrywise_abs(a);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(b.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(b.at(1, 1), 3.0);
}

TEST(Scaling, NonPositiveDiagonalRejected) {
  const CsrMatrix a(1, 1, {0, 1}, {0}, {-4.0});
  EXPECT_THROW(scale_to_unit_diagonal(a), std::logic_error);
}

TEST(Scaling, ZeroDiagonalRejectedForRowScaling) {
  const CsrMatrix a(1, 1, {0, 1}, {0}, {0.0});
  EXPECT_THROW(scale_rows_by_diagonal(a), std::logic_error);
  EXPECT_THROW(jacobi_iteration_matrix(a), std::logic_error);
}

}  // namespace
}  // namespace ajac
