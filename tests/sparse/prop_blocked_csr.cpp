// Property-based tests for the partition-aware BlockedCsr layout:
// ~200 seeded random sparsity patterns x random (possibly degenerate)
// contiguous partitions per property. Seeds derive from
// ajac::testing::test_seed(), so AJAC_TEST_SEED explores fresh draws and
// any failure names the seed that reproduces it.

#include "ajac/sparse/blocked_csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

constexpr int kCases = 200;

/// Random square matrix: arbitrary sparsity (duplicates summed by the
/// builder), diagonal entries present on a random subset of rows only —
/// BlockedCsr must not require a full diagonal. Sizes start at n = 1 so
/// singleton rows and 1x1 matrices are drawn regularly.
CsrMatrix random_matrix(Rng& rng) {
  const index_t n = 1 + static_cast<index_t>(rng.uniform_index(24));
  CooBuilder coo(n, n);
  const auto entries = rng.uniform_index(
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) + 1);
  for (std::uint64_t k = 0; k < entries; ++k) {
    coo.add(static_cast<index_t>(rng.uniform_index(n)),
            static_cast<index_t>(rng.uniform_index(n)),
            rng.uniform(-2.0, 2.0));
  }
  for (index_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.6) coo.add(i, i, rng.uniform(0.5, 4.0));
  }
  return coo.to_csr();
}

/// Random contiguous block starts over [0, n]: sorted cut points with
/// repeats allowed, so empty blocks occur all the time.
std::vector<index_t> random_block_starts(Rng& rng, index_t n) {
  const auto parts = 1 + rng.uniform_index(6);
  std::vector<index_t> starts{0};
  for (std::uint64_t p = 1; p < parts; ++p) {
    starts.push_back(static_cast<index_t>(
        rng.uniform_index(static_cast<std::uint64_t>(n) + 1)));
  }
  std::sort(starts.begin(), starts.end());
  starts.push_back(n);
  return starts;
}

TEST(PropBlockedCsr, ReassemblyReproducesTheOriginalExactly) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(5000 + static_cast<std::uint64_t>(c)));
    const CsrMatrix a = random_matrix(rng);
    const auto starts = random_block_starts(rng, a.num_rows());
    const BlockedCsr blocked(a, starts);
    ASSERT_EQ(blocked.num_rows(), a.num_rows());
    ASSERT_EQ(blocked.num_cols(), a.num_cols());
    ASSERT_EQ(blocked.num_nonzeros(), a.num_nonzeros());
    ASSERT_EQ(blocked.num_blocks(),
              static_cast<index_t>(starts.size()) - 1);
    // The split is lossless: decoding every (block, code) pair gives back
    // the source matrix bit for bit, entry order included.
    ASSERT_EQ(blocked.reassemble(), a);
  }
}

TEST(PropBlockedCsr, InteriorRowsProvablyHaveNoGhostColumns) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(6000 + static_cast<std::uint64_t>(c)));
    const CsrMatrix a = random_matrix(rng);
    const auto starts = random_block_starts(rng, a.num_rows());
    const BlockedCsr blocked(a, starts);
    for (index_t t = 0; t < blocked.num_blocks(); ++t) {
      const auto& blk = blocked.block(t);
      // interior + boundary is exactly the block's row range, ascending,
      // with no row in both lists.
      std::vector<index_t> merged;
      std::merge(blk.interior_rows.begin(), blk.interior_rows.end(),
                 blk.boundary_rows.begin(), blk.boundary_rows.end(),
                 std::back_inserter(merged));
      ASSERT_EQ(merged.size(), static_cast<std::size_t>(blk.num_rows()));
      for (std::size_t k = 0; k < merged.size(); ++k) {
        ASSERT_EQ(merged[k], blk.lo + static_cast<index_t>(k));
      }
      const auto row_has_ghost = [&](index_t i) {
        const auto li = static_cast<std::size_t>(i - blk.lo);
        for (index_t p = blk.row_ptr[li]; p < blk.row_ptr[li + 1]; ++p) {
          if (BlockedCsr::is_ghost(blk.col_code[static_cast<std::size_t>(p)]))
            return true;
        }
        return false;
      };
      for (const index_t i : blk.interior_rows) {
        ASSERT_FALSE(row_has_ghost(i)) << "interior row " << i;
      }
      for (const index_t i : blk.boundary_rows) {
        ASSERT_TRUE(row_has_ghost(i)) << "boundary row " << i;
      }
    }
  }
}

TEST(PropBlockedCsr, CodesDecodeToTheOriginalColumns) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(7000 + static_cast<std::uint64_t>(c)));
    const CsrMatrix a = random_matrix(rng);
    const auto starts = random_block_starts(rng, a.num_rows());
    const BlockedCsr blocked(a, starts);
    index_t local_total = 0;
    index_t ghost_total = 0;
    for (index_t t = 0; t < blocked.num_blocks(); ++t) {
      const auto& blk = blocked.block(t);
      ASSERT_TRUE(std::is_sorted(blk.ghost_cols.begin(),
                                 blk.ghost_cols.end()));
      ASSERT_EQ(std::adjacent_find(blk.ghost_cols.begin(),
                                   blk.ghost_cols.end()),
                blk.ghost_cols.end());
      for (const index_t g : blk.ghost_cols) {
        ASSERT_TRUE(g < blk.lo || g >= blk.hi)
            << "ghost column " << g << " inside [" << blk.lo << ", "
            << blk.hi << ")";
      }
      for (index_t i = blk.lo; i < blk.hi; ++i) {
        const auto li = static_cast<std::size_t>(i - blk.lo);
        const auto cols = a.row_cols(i);
        const auto vals = a.row_values(i);
        ASSERT_EQ(static_cast<std::size_t>(blk.row_ptr[li + 1] -
                                           blk.row_ptr[li]),
                  cols.size());
        for (std::size_t p = 0; p < cols.size(); ++p) {
          const auto bp = static_cast<std::size_t>(blk.row_ptr[li]) + p;
          const index_t code = blk.col_code[bp];
          const index_t decoded =
              BlockedCsr::is_ghost(code)
                  ? blk.ghost_cols[static_cast<std::size_t>(
                        BlockedCsr::ghost_slot(code))]
                  : blk.lo + code;
          ASSERT_EQ(decoded, cols[p]) << "row " << i << " entry " << p;
          ASSERT_EQ(blk.values[bp], vals[p]) << "row " << i << " entry " << p;
        }
      }
      local_total += blk.local_nnz;
      ghost_total += blk.ghost_nnz;
      ASSERT_EQ(blk.local_nnz + blk.ghost_nnz,
                blk.row_ptr[static_cast<std::size_t>(blk.num_rows())]);
    }
    ASSERT_EQ(local_total + ghost_total, a.num_nonzeros());
  }
}

TEST(PropBlockedCsr, InvDiagMatchesTheStoredDiagonal) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(8000 + static_cast<std::uint64_t>(c)));
    const CsrMatrix a = random_matrix(rng);
    const auto starts = random_block_starts(rng, a.num_rows());
    const BlockedCsr blocked(a, starts);
    for (index_t t = 0; t < blocked.num_blocks(); ++t) {
      const auto& blk = blocked.block(t);
      for (index_t i = blk.lo; i < blk.hi; ++i) {
        const double d = a.at(i, i);
        const double expected = d != 0.0 ? 1.0 / d : 0.0;
        ASSERT_EQ(blk.inv_diag[static_cast<std::size_t>(i - blk.lo)],
                  expected)
            << "row " << i;
      }
    }
  }
}

TEST(PropBlockedCsr, DegenerateShapesAreHandled) {
  // Deterministic edge cases on top of the random sweeps: all-empty
  // blocks, a single all-of-the-matrix block, a 1x1 matrix, and one block
  // per row (every off-diagonal entry a ghost).
  {
    const CsrMatrix a = csr_identity(4);
    const BlockedCsr blocked(a, std::vector<index_t>{0, 0, 4, 4, 4});
    ASSERT_EQ(blocked.num_blocks(), 4);
    EXPECT_EQ(blocked.block(0).num_rows(), 0);
    EXPECT_EQ(blocked.block(1).num_rows(), 4);
    EXPECT_EQ(blocked.block(2).num_rows(), 0);
    EXPECT_EQ(blocked.block(3).num_rows(), 0);
    EXPECT_EQ(blocked.reassemble(), a);
    EXPECT_TRUE(blocked.block(1).boundary_rows.empty());
  }
  {
    CooBuilder coo(1, 1);
    coo.add(0, 0, 2.5);
    const CsrMatrix a = coo.to_csr();
    const BlockedCsr blocked(a, std::vector<index_t>{0, 1});
    ASSERT_EQ(blocked.num_blocks(), 1);
    EXPECT_EQ(blocked.block(0).interior_rows,
              std::vector<index_t>{0});
    EXPECT_EQ(blocked.block(0).inv_diag[0], 1.0 / 2.5);
    EXPECT_EQ(blocked.reassemble(), a);
  }
  {
    // Tridiagonal with one row per block: both neighbors of every interior
    // row are ghosts, so every row with an off-diagonal entry is boundary.
    CooBuilder coo(5, 5);
    for (index_t i = 0; i < 5; ++i) {
      coo.add(i, i, 2.0);
      if (i > 0) coo.add(i, i - 1, -1.0);
      if (i < 4) coo.add(i, i + 1, -1.0);
    }
    const CsrMatrix a = coo.to_csr();
    const BlockedCsr blocked(a, std::vector<index_t>{0, 1, 2, 3, 4, 5});
    for (index_t t = 0; t < 5; ++t) {
      EXPECT_TRUE(blocked.block(t).interior_rows.empty());
      EXPECT_EQ(blocked.block(t).boundary_rows,
                std::vector<index_t>{t});
    }
    EXPECT_EQ(blocked.reassemble(), a);
  }
}

TEST(PropBlockedCsr, InvalidBlockStartsAreRejected) {
  const CsrMatrix a = csr_identity(3);
  EXPECT_THROW(BlockedCsr(a, std::vector<index_t>{0}), std::logic_error);
  EXPECT_THROW(BlockedCsr(a, std::vector<index_t>{1, 3}), std::logic_error);
  EXPECT_THROW(BlockedCsr(a, std::vector<index_t>{0, 2}), std::logic_error);
  EXPECT_THROW(BlockedCsr(a, std::vector<index_t>{0, 2, 1, 3}),
               std::logic_error);
}

}  // namespace
}  // namespace ajac
