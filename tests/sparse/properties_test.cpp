#include "ajac/sparse/properties.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/scaling.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

TEST(Properties, FdLaplacianIsWdd) {
  EXPECT_TRUE(is_weakly_diag_dominant(gen::fd_laplacian_2d(6, 9)));
  EXPECT_TRUE(is_weakly_diag_dominant(gen::fd_laplacian_3d(4, 4, 4)));
  EXPECT_DOUBLE_EQ(wdd_fraction(gen::fd_laplacian_1d(10)), 1.0);
}

TEST(Properties, RowWddDetectsViolation) {
  // Row 0: |1| < |-2| violates W.D.D.; row 1 satisfies it.
  const CsrMatrix a(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {1, -2, -0.5, 1});
  EXPECT_FALSE(row_is_wdd(a, 0));
  EXPECT_TRUE(row_is_wdd(a, 1));
  EXPECT_FALSE(is_weakly_diag_dominant(a));
  EXPECT_DOUBLE_EQ(wdd_fraction(a), 0.5);
}

TEST(Properties, PaperFeMatrixIsHalfWdd) {
  // Sec. VII-A: "approximately half the rows have the W.D.D. property".
  const CsrMatrix fe = scale_to_unit_diagonal(gen::paper_fe_3081());
  const double f = wdd_fraction(fe);
  EXPECT_GT(f, 0.35);
  EXPECT_LT(f, 0.6);
}

TEST(Properties, UnitDiagonalDetection) {
  EXPECT_FALSE(has_unit_diagonal(gen::fd_laplacian_2d(3, 3)));
  EXPECT_TRUE(
      has_unit_diagonal(scale_to_unit_diagonal(gen::fd_laplacian_2d(3, 3)),
                        1e-14));
}

TEST(Properties, IrreducibilityOfConnectedGrid) {
  EXPECT_TRUE(is_irreducible(gen::fd_laplacian_2d(5, 5)));
}

TEST(Properties, BlockDiagonalIsReducible) {
  // Two decoupled 1x1 blocks.
  const CsrMatrix a(2, 2, {0, 1, 2}, {0, 1}, {1.0, 1.0});
  EXPECT_FALSE(is_irreducible(a));
}

TEST(Properties, OffdiagDegrees) {
  const CsrMatrix a = gen::fd_laplacian_2d(3, 3);
  const auto deg = offdiag_degrees(a);
  ASSERT_EQ(deg.size(), 9u);
  EXPECT_EQ(deg[0], 2);  // corner
  EXPECT_EQ(deg[1], 3);  // edge
  EXPECT_EQ(deg[4], 4);  // center
}

TEST(Properties, WddToleratesRoundoff) {
  // Diagonal exactly equals the off-diagonal sum up to one ulp.
  const double eps = 1e-16;
  const CsrMatrix a(2, 2, {0, 2, 4}, {0, 1, 0, 1},
                    {1.0, -(1.0 + eps), -(1.0 + eps), 1.0});
  EXPECT_TRUE(row_is_wdd(a, 0));
}

}  // namespace
}  // namespace ajac
