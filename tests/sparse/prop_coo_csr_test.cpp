// Property-based COO <-> CSR tests: ~200 seeded random matrices per
// property, checked against a dense accumulation of the same triplets.
// Seeds derive from ajac::testing::test_seed(), so AJAC_TEST_SEED explores
// fresh draws and any failure names the seed that reproduces it.

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

constexpr int kCases = 200;

struct Triplets {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> i;
  std::vector<index_t> j;
  std::vector<double> v;
};

Triplets random_triplets(Rng& rng, bool with_duplicates) {
  Triplets t;
  t.rows = 1 + static_cast<index_t>(rng.uniform_index(20));
  t.cols = 1 + static_cast<index_t>(rng.uniform_index(20));
  const auto entries = rng.uniform_index(
      static_cast<std::uint64_t>(t.rows * t.cols) + 1);
  for (std::uint64_t k = 0; k < entries; ++k) {
    t.i.push_back(static_cast<index_t>(rng.uniform_index(t.rows)));
    t.j.push_back(static_cast<index_t>(rng.uniform_index(t.cols)));
    t.v.push_back(rng.uniform(-2.0, 2.0));
    if (with_duplicates && rng.uniform() < 0.3 && !t.i.empty()) {
      // Re-emit an earlier coordinate with a fresh value.
      const auto dup = rng.uniform_index(t.i.size());
      t.i.push_back(t.i[dup]);
      t.j.push_back(t.j[dup]);
      t.v.push_back(rng.uniform(-2.0, 2.0));
    }
  }
  return t;
}

std::map<std::pair<index_t, index_t>, double> dense_sum(const Triplets& t) {
  std::map<std::pair<index_t, index_t>, double> sum;
  for (std::size_t k = 0; k < t.v.size(); ++k) {
    sum[{t.i[k], t.j[k]}] += t.v[k];
  }
  return sum;
}

TEST(PropCooCsr, ConversionMatchesDenseAccumulation) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(1000 + static_cast<std::uint64_t>(c)));
    const Triplets t = random_triplets(rng, /*with_duplicates=*/true);
    CooBuilder coo(t.rows, t.cols);
    for (std::size_t k = 0; k < t.v.size(); ++k) {
      coo.add(t.i[k], t.j[k], t.v[k]);
    }
    const CsrMatrix a = coo.to_csr();
    ASSERT_EQ(a.num_rows(), t.rows);
    ASSERT_EQ(a.num_cols(), t.cols);
    ASSERT_TRUE(a.has_sorted_rows());
    // Every accumulated coordinate is stored with the summed value...
    const auto sum = dense_sum(t);
    ASSERT_EQ(a.num_nonzeros(), static_cast<index_t>(sum.size()));
    for (const auto& [coord, value] : sum) {
      ASSERT_DOUBLE_EQ(a.at(coord.first, coord.second), value);
    }
  }
}

TEST(PropCooCsr, RoundTripThroughTripletsIsIdentity) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(2000 + static_cast<std::uint64_t>(c)));
    const Triplets t = random_triplets(rng, /*with_duplicates=*/false);
    CooBuilder coo(t.rows, t.cols);
    for (std::size_t k = 0; k < t.v.size(); ++k) {
      coo.add(t.i[k], t.j[k], t.v[k]);
    }
    const CsrMatrix a = coo.to_csr();
    // Feed the CSR entries back through a builder: the result must be the
    // same matrix (CSR is a normal form for duplicate-free triplets).
    CooBuilder back(a.num_rows(), a.num_cols());
    for (index_t i = 0; i < a.num_rows(); ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_values(i);
      for (std::size_t p = 0; p < cols.size(); ++p) {
        back.add(i, cols[p], vals[p]);
      }
    }
    ASSERT_EQ(back.to_csr(), a);
  }
}

TEST(PropCooCsr, SymmetricAddBuildsSymmetricMatrices) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(3000 + static_cast<std::uint64_t>(c)));
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(16));
    CooBuilder coo(n, n);
    const auto entries = rng.uniform_index(40);
    for (std::uint64_t k = 0; k < entries; ++k) {
      coo.add_symmetric(static_cast<index_t>(rng.uniform_index(n)),
                        static_cast<index_t>(rng.uniform_index(n)),
                        rng.uniform(-1.0, 1.0));
    }
    const CsrMatrix a = coo.to_csr();
    EXPECT_TRUE(a.is_symmetric());
    EXPECT_EQ(a.transpose(), a);
  }
}

TEST(PropCooCsr, DropZerosRemovesExactCancellations) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(4000 + static_cast<std::uint64_t>(c)));
    const index_t n = 2 + static_cast<index_t>(rng.uniform_index(12));
    CooBuilder coo(n, n);
    index_t cancelled = 0;
    const auto entries = 1 + rng.uniform_index(30);
    for (std::uint64_t k = 0; k < entries; ++k) {
      const auto i = static_cast<index_t>(rng.uniform_index(n));
      const auto j = static_cast<index_t>(rng.uniform_index(n));
      const double v = rng.uniform(-1.0, 1.0);
      coo.add(i, j, v);
      if (rng.uniform() < 0.5) {
        coo.add(i, j, -v);  // exact cancellation at (i, j)
        ++cancelled;
      }
    }
    const CsrMatrix kept = coo.to_csr(/*drop_zeros=*/false);
    const CsrMatrix dropped = coo.to_csr(/*drop_zeros=*/true);
    EXPECT_LE(dropped.num_nonzeros(), kept.num_nonzeros());
    for (index_t i = 0; i < n; ++i) {
      for (const double v : dropped.row_values(i)) {
        EXPECT_NE(v, 0.0);
      }
    }
    // Both carry the same numerical content.
    for (index_t i = 0; i < n; ++i) {
      const auto cols = kept.row_cols(i);
      const auto vals = kept.row_values(i);
      for (std::size_t p = 0; p < cols.size(); ++p) {
        EXPECT_EQ(dropped.at(i, cols[p]), vals[p]);
      }
    }
    if (cancelled == 0) {
      EXPECT_EQ(dropped, kept);
    }
  }
}

}  // namespace
}  // namespace ajac
