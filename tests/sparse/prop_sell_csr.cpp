// Property-based tests for the SELL-C-sigma interior repack (SellCsr):
// ~200 seeded random sparsity patterns x random contiguous partitions x
// random sorting windows per property. Seeds derive from
// ajac::testing::test_seed(), so AJAC_TEST_SEED explores fresh draws and
// any failure names the seed that reproduces it.
//
// The load-bearing contract (see sell_csr.hpp): slice s of a packed row is
// entry s of that row in source CSR order, rows permute only within their
// sigma window, and within every chunk the row lengths are non-increasing
// so each slice's active rows are a prefix. The kernel's correctness — and
// its bitwise equivalence to the blocked path — rests on exactly these
// invariants.

#include "ajac/sparse/sell_csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ajac/sparse/blocked_csr.hpp"
#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

constexpr int kCases = 200;

/// Random square matrix, same family as the BlockedCsr properties:
/// arbitrary sparsity, diagonal present on a random subset of rows only.
CsrMatrix random_matrix(Rng& rng) {
  const index_t n = 1 + static_cast<index_t>(rng.uniform_index(24));
  CooBuilder coo(n, n);
  const auto entries = rng.uniform_index(
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) + 1);
  for (std::uint64_t k = 0; k < entries; ++k) {
    coo.add(static_cast<index_t>(rng.uniform_index(n)),
            static_cast<index_t>(rng.uniform_index(n)),
            rng.uniform(-2.0, 2.0));
  }
  for (index_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.6) coo.add(i, i, rng.uniform(0.5, 4.0));
  }
  return coo.to_csr();
}

std::vector<index_t> random_block_starts(Rng& rng, index_t n) {
  const auto parts = 1 + rng.uniform_index(6);
  std::vector<index_t> starts{0};
  for (std::uint64_t p = 1; p < parts; ++p) {
    starts.push_back(static_cast<index_t>(
        rng.uniform_index(static_cast<std::uint64_t>(n) + 1)));
  }
  std::sort(starts.begin(), starts.end());
  starts.push_back(n);
  return starts;
}

/// Random sigma including values below kChunk and non-multiples (the
/// constructor must clamp and align them).
index_t random_sigma(Rng& rng) {
  return 1 + static_cast<index_t>(rng.uniform_index(40));
}

/// Reconstruct packed row p of `sblk` from the slice-major streams: slice
/// s of chunk c holds entry s of every chunk row with row_len > s, in pack
/// order, prefix-packed. Returns (cols, vals) in entry order.
std::pair<std::vector<std::int32_t>, std::vector<double>> unpack_row(
    const SellCsr::Block& sblk, index_t p) {
  const index_t c = p / SellCsr::kChunk;
  const index_t first = c * SellCsr::kChunk;
  const index_t rows_in_chunk =
      std::min<index_t>(SellCsr::kChunk, sblk.num_packed_rows() - first);
  std::pair<std::vector<std::int32_t>, std::vector<double>> out;
  auto pos = static_cast<std::size_t>(
      sblk.chunk_ptr[static_cast<std::size_t>(c)]);
  const std::int32_t width = sblk.row_len[static_cast<std::size_t>(first)];
  for (std::int32_t s = 0; s < width; ++s) {
    index_t cnt = 0;
    while (cnt < rows_in_chunk &&
           sblk.row_len[static_cast<std::size_t>(first + cnt)] > s) {
      ++cnt;
    }
    if (sblk.row_len[static_cast<std::size_t>(p)] > s) {
      const auto at = pos + static_cast<std::size_t>(p - first);
      out.first.push_back(sblk.cols[at]);
      out.second.push_back(sblk.vals[at]);
    }
    pos += static_cast<std::size_t>(cnt);
  }
  return out;
}

TEST(PropSellCsr, PackRoundTripReproducesEveryInteriorRow) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(9000 + static_cast<std::uint64_t>(c)));
    const CsrMatrix a = random_matrix(rng);
    const auto starts = random_block_starts(rng, a.num_rows());
    const BlockedCsr blocked(a, starts);
    const SellCsr sell(blocked, random_sigma(rng));
    ASSERT_EQ(sell.num_blocks(), blocked.num_blocks());
    for (index_t t = 0; t < sell.num_blocks(); ++t) {
      const auto& sblk = sell.block(t);
      const auto& blk = blocked.block(t);
      ASSERT_EQ(sblk.lo, blk.lo);
      ASSERT_EQ(static_cast<std::size_t>(sblk.num_packed_rows()),
                blk.interior_rows.size());
      for (index_t p = 0; p < sblk.num_packed_rows(); ++p) {
        const index_t i = sblk.rows[static_cast<std::size_t>(p)];
        const auto [cols, vals] = unpack_row(sblk, p);
        const auto src_cols = a.row_cols(i);
        const auto src_vals = a.row_values(i);
        ASSERT_EQ(cols.size(), src_cols.size()) << "row " << i;
        for (std::size_t e = 0; e < cols.size(); ++e) {
          // Interior rows have only local columns; the stored int32 offset
          // must decode back to the source column, in source entry order.
          ASSERT_EQ(sblk.lo + static_cast<index_t>(cols[e]), src_cols[e])
              << "row " << i << " entry " << e;
          ASSERT_EQ(vals[e], src_vals[e]) << "row " << i << " entry " << e;
        }
      }
    }
  }
}

TEST(PropSellCsr, ChunkInvariantsHold) {
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(10000 + static_cast<std::uint64_t>(c)));
    const CsrMatrix a = random_matrix(rng);
    const auto starts = random_block_starts(rng, a.num_rows());
    const BlockedCsr blocked(a, starts);
    const index_t sigma = random_sigma(rng);
    const SellCsr sell(blocked, sigma);
    // The constructor aligns sigma to a chunk multiple (>= one chunk).
    const index_t eff_sigma =
        std::max<index_t>(SellCsr::kChunk,
                          sigma - sigma % SellCsr::kChunk);
    for (index_t t = 0; t < sell.num_blocks(); ++t) {
      const auto& sblk = sell.block(t);
      const auto& blk = blocked.block(t);
      const index_t packed = sblk.num_packed_rows();
      ASSERT_EQ(sblk.num_chunks,
                (packed + SellCsr::kChunk - 1) / SellCsr::kChunk);
      ASSERT_EQ(sblk.chunk_ptr.size(),
                static_cast<std::size_t>(sblk.num_chunks) + 1);
      // rows is interior_rows permuted within sigma windows only: each
      // window holds the same row set, sorted by non-increasing length.
      for (index_t w = 0; w < packed; w += eff_sigma) {
        const index_t end = std::min(w + eff_sigma, packed);
        std::vector<index_t> window(
            sblk.rows.begin() + w, sblk.rows.begin() + end);
        std::vector<index_t> source(
            blk.interior_rows.begin() + w, blk.interior_rows.begin() + end);
        std::sort(window.begin(), window.end());
        std::sort(source.begin(), source.end());
        ASSERT_EQ(window, source) << "window at " << w;
      }
      std::size_t total = 0;
      for (index_t p = 0; p < packed; ++p) {
        const index_t i = sblk.rows[static_cast<std::size_t>(p)];
        const auto li = static_cast<std::size_t>(i - blk.lo);
        // Stored lengths are the source row lengths...
        ASSERT_EQ(sblk.row_len[static_cast<std::size_t>(p)],
                  blk.row_ptr[li + 1] - blk.row_ptr[li]);
        total += static_cast<std::size_t>(
            sblk.row_len[static_cast<std::size_t>(p)]);
        // ...and non-increasing inside every chunk (the prefix property
        // the kernel's running count relies on).
        if (p % SellCsr::kChunk != 0) {
          ASSERT_LE(sblk.row_len[static_cast<std::size_t>(p)],
                    sblk.row_len[static_cast<std::size_t>(p - 1)])
              << "packed row " << p;
        }
      }
      // beta = 1: no padding entries anywhere.
      ASSERT_EQ(sblk.cols.size(), total);
      ASSERT_EQ(sblk.vals.size(), total);
      ASSERT_EQ(static_cast<std::size_t>(
                    sblk.chunk_ptr[static_cast<std::size_t>(sblk.num_chunks)]),
                total);
      // chunk_ptr extents equal the sum of the chunk's row lengths.
      for (index_t cc = 0; cc < sblk.num_chunks; ++cc) {
        const index_t first = cc * SellCsr::kChunk;
        const index_t last = std::min(first + SellCsr::kChunk, packed);
        std::int64_t chunk_nnz = 0;
        for (index_t p = first; p < last; ++p) {
          chunk_nnz += sblk.row_len[static_cast<std::size_t>(p)];
        }
        ASSERT_EQ(sblk.chunk_ptr[static_cast<std::size_t>(cc) + 1] -
                      sblk.chunk_ptr[static_cast<std::size_t>(cc)],
                  chunk_nnz)
            << "chunk " << cc;
      }
    }
  }
}

TEST(PropSellCsr, DegenerateShapesAreHandled) {
  {
    // Identity: every row interior, all rows length 1.
    const CsrMatrix a = csr_identity(4);
    const BlockedCsr blocked(a, std::vector<index_t>{0, 4});
    const SellCsr sell(blocked);
    ASSERT_EQ(sell.num_blocks(), 1);
    EXPECT_EQ(sell.block(0).num_packed_rows(), 4);
    EXPECT_EQ(sell.block(0).cols.size(), 4U);
  }
  {
    // One row per block on a tridiagonal matrix: no interior rows at all,
    // every SELL block is empty.
    CooBuilder coo(5, 5);
    for (index_t i = 0; i < 5; ++i) {
      coo.add(i, i, 2.0);
      if (i > 0) coo.add(i, i - 1, -1.0);
      if (i < 4) coo.add(i, i + 1, -1.0);
    }
    const BlockedCsr blocked(coo.to_csr(),
                             std::vector<index_t>{0, 1, 2, 3, 4, 5});
    const SellCsr sell(blocked);
    for (index_t t = 0; t < 5; ++t) {
      EXPECT_EQ(sell.block(t).num_packed_rows(), 0);
      EXPECT_EQ(sell.block(t).num_chunks, 0);
      EXPECT_TRUE(sell.block(t).cols.empty());
    }
  }
  {
    // Empty blocks in the partition are preserved as empty SELL blocks.
    const CsrMatrix a = csr_identity(4);
    const BlockedCsr blocked(a, std::vector<index_t>{0, 0, 4, 4, 4});
    const SellCsr sell(blocked);
    ASSERT_EQ(sell.num_blocks(), 4);
    EXPECT_EQ(sell.block(0).num_packed_rows(), 0);
    EXPECT_EQ(sell.block(1).num_packed_rows(), 4);
    EXPECT_EQ(sell.block(3).num_packed_rows(), 0);
  }
}

}  // namespace
}  // namespace ajac
