#include "ajac/sparse/mm_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac {
namespace {

TEST(MatrixMarket, RoundTripGeneral) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 5);
  std::stringstream ss;
  write_matrix_market(a, ss);
  const CsrMatrix b = read_matrix_market(ss);
  EXPECT_TRUE(a == b);
}

TEST(MatrixMarket, ParsesSymmetricStorage) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 3 2.0\n");
  const CsrMatrix a = read_matrix_market(ss);
  EXPECT_EQ(a.num_rows(), 3);
  EXPECT_EQ(a.num_nonzeros(), 5);  // off-diagonal expanded
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
}

TEST(MatrixMarket, ParsesPattern) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const CsrMatrix a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(MatrixMarket, ParsesIntegerField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 7\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(ss).at(0, 1), 7.0);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::stringstream ss("not a matrix\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(MatrixMarket, RejectsUnsupportedFormat) {
  std::stringstream ss("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeIndices) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedFile) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(MatrixMarket, RejectsMissingFile) {
  EXPECT_THROW(read_matrix_market("/nonexistent/path.mtx"),
               std::runtime_error);
}

TEST(MatrixMarket, VectorRoundTrip) {
  Vector x{1.5, -2.25, 1.0 / 3.0, 0.0};
  std::stringstream ss;
  write_vector_market(x, ss);
  const Vector y = read_vector_market(ss);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(x[i], y[i]);
}

TEST(MatrixMarket, VectorRejectsMatrixShapedArray) {
  std::stringstream ss(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1\n2\n3\n4\n");
  EXPECT_THROW(read_vector_market(ss), std::runtime_error);
}

TEST(MatrixMarket, VectorRejectsCoordinateFormat) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 1 2\n1 1 1.0\n2 1 2.0\n");
  EXPECT_THROW(read_vector_market(ss), std::runtime_error);
}

TEST(MatrixMarket, VectorRejectsTruncatedData) {
  std::stringstream ss(
      "%%MatrixMarket matrix array real general\n"
      "3 1\n"
      "1.0\n");
  EXPECT_THROW(read_vector_market(ss), std::runtime_error);
}

TEST(MatrixMarket, PreservesFullPrecision) {
  CsrMatrix a(1, 1, {0, 1}, {0}, {1.0 / 3.0});
  std::stringstream ss;
  write_matrix_market(a, ss);
  const CsrMatrix b = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 1.0 / 3.0);
}

}  // namespace
}  // namespace ajac
