#include "ajac/sparse/coo.hpp"

#include <gtest/gtest.h>

#include "ajac/sparse/csr.hpp"

namespace ajac {
namespace {

TEST(CooBuilder, BuildsSortedCsr) {
  CooBuilder coo(2, 3);
  coo.add(1, 2, 3.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 2.0);
  const CsrMatrix a = coo.to_csr();
  EXPECT_EQ(a.num_rows(), 2);
  EXPECT_EQ(a.num_cols(), 3);
  EXPECT_EQ(a.num_nonzeros(), 3);
  EXPECT_TRUE(a.has_sorted_rows());
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 3.0);
}

TEST(CooBuilder, DuplicatesAreSummed) {
  CooBuilder coo(1, 1);
  coo.add(0, 0, 1.5);
  coo.add(0, 0, 2.5);
  coo.add(0, 0, -1.0);
  const CsrMatrix a = coo.to_csr();
  EXPECT_EQ(a.num_nonzeros(), 1);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
}

TEST(CooBuilder, DropZerosRemovesCancellation) {
  CooBuilder coo(1, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, -1.0);
  coo.add(0, 1, 2.0);
  EXPECT_EQ(coo.to_csr(false).num_nonzeros(), 2);
  EXPECT_EQ(coo.to_csr(true).num_nonzeros(), 1);
}

TEST(CooBuilder, AddSymmetricMirrors) {
  CooBuilder coo(3, 3);
  coo.add_symmetric(0, 2, -1.0);
  coo.add_symmetric(1, 1, 4.0);  // diagonal added once
  const CsrMatrix a = coo.to_csr();
  EXPECT_DOUBLE_EQ(a.at(0, 2), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 4.0);
  EXPECT_EQ(a.num_nonzeros(), 3);
}

TEST(CooBuilder, EmptyRowsProduceEmptySpans) {
  CooBuilder coo(3, 3);
  coo.add(2, 2, 1.0);
  const CsrMatrix a = coo.to_csr();
  EXPECT_EQ(a.row_nnz(0), 0);
  EXPECT_EQ(a.row_nnz(1), 0);
  EXPECT_EQ(a.row_nnz(2), 1);
}

TEST(CooBuilder, NumEntriesCountsRawTriplets) {
  CooBuilder coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 1.0);
  EXPECT_EQ(coo.num_entries(), 2u);
}

TEST(CooBuilder, LargeRandomPatternRoundTrips) {
  const index_t n = 50;
  CooBuilder coo(n, n);
  // Deterministic scattered pattern with duplicates.
  for (index_t k = 0; k < 500; ++k) {
    coo.add((k * 7) % n, (k * 13) % n, 1.0);
  }
  const CsrMatrix a = coo.to_csr();
  EXPECT_TRUE(a.has_sorted_rows());
  // Sum of all values must equal number of triplets.
  double total = 0.0;
  for (double v : a.values()) total += v;
  EXPECT_DOUBLE_EQ(total, 500.0);
}

}  // namespace
}  // namespace ajac
