#include "ajac/sparse/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ajac/util/rng.hpp"

namespace ajac {
namespace {

TEST(VectorOps, Axpy) {
  Vector x{1, 2, 3};
  Vector y{10, 20, 30};
  vec::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12);
  EXPECT_DOUBLE_EQ(y[1], 24);
  EXPECT_DOUBLE_EQ(y[2], 36);
}

TEST(VectorOps, Xpby) {
  Vector x{1, 1};
  Vector y{3, 5};
  vec::xpby(x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
  EXPECT_DOUBLE_EQ(y[1], 3.5);
}

TEST(VectorOps, Sub) {
  Vector x{5, 7};
  Vector y{2, 10};
  Vector z(2);
  vec::sub(x, y, z);
  EXPECT_DOUBLE_EQ(z[0], 3);
  EXPECT_DOUBLE_EQ(z[1], -3);
}

TEST(VectorOps, DotAndNorm2Consistent) {
  Vector x{3, 4};
  EXPECT_DOUBLE_EQ(vec::dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(vec::norm2(x), 5.0);
}

TEST(VectorOps, NormDefinitions) {
  Vector x{-1, 2, -3};
  EXPECT_DOUBLE_EQ(vec::norm1(x), 6.0);
  EXPECT_DOUBLE_EQ(vec::norm_inf(x), 3.0);
  EXPECT_DOUBLE_EQ(vec::norm2(x), std::sqrt(14.0));
}

TEST(VectorOps, NormInequalitiesHold) {
  Rng rng(8);
  Vector x(101);
  vec::fill_uniform(x, rng);
  const double n1 = vec::norm1(x);
  const double n2 = vec::norm2(x);
  const double ninf = vec::norm_inf(x);
  EXPECT_LE(ninf, n2 + 1e-14);
  EXPECT_LE(n2, n1 + 1e-14);
  EXPECT_LE(n1, 101.0 * ninf + 1e-12);
}

TEST(VectorOps, FillUniformRange) {
  Rng rng(2);
  Vector x(1000);
  vec::fill_uniform(x, rng, -1.0, 1.0);
  for (double v : x) {
    ASSERT_GE(v, -1.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(VectorOps, Fill) {
  Vector x(5);
  vec::fill(x, 7.5);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 7.5);
}

TEST(VectorOps, MaxAbsDiff) {
  Vector x{1, 2, 3};
  Vector y{1, 2.5, 2};
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(x, y), 1.0);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(x, x), 0.0);
}

TEST(VectorOps, EmptyVectorsAreHandled) {
  Vector x;
  EXPECT_DOUBLE_EQ(vec::norm1(x), 0.0);
  EXPECT_DOUBLE_EQ(vec::norm2(x), 0.0);
  EXPECT_DOUBLE_EQ(vec::norm_inf(x), 0.0);
}

}  // namespace
}  // namespace ajac
