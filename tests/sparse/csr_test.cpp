#include "ajac/sparse/csr.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

CsrMatrix tiny() {
  // [ 2 -1  0 ]
  // [-1  2 -1 ]
  // [ 0 -1  2 ]
  return CsrMatrix(3, 3, {0, 2, 5, 7}, {0, 1, 0, 1, 2, 1, 2},
                   {2, -1, -1, 2, -1, -1, 2});
}

TEST(CsrMatrix, BasicAccessors) {
  const CsrMatrix a = tiny();
  EXPECT_EQ(a.num_rows(), 3);
  EXPECT_EQ(a.num_cols(), 3);
  EXPECT_EQ(a.num_nonzeros(), 7);
  EXPECT_EQ(a.row_nnz(0), 2);
  EXPECT_EQ(a.row_nnz(1), 3);
}

TEST(CsrMatrix, AtReturnsStoredAndZero) {
  const CsrMatrix a = tiny();
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(CsrMatrix, SpmvMatchesManual) {
  const CsrMatrix a = tiny();
  Vector x{1.0, 2.0, 3.0};
  Vector y(3);
  a.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2 * 1 - 2.0);
  EXPECT_DOUBLE_EQ(y[1], -1 + 4 - 3);
  EXPECT_DOUBLE_EQ(y[2], -2 + 6);
}

TEST(CsrMatrix, SpmvOmpMatchesSerial) {
  const CsrMatrix a = gen::fd_laplacian_2d(13, 17);
  Rng rng(4);
  Vector x(static_cast<std::size_t>(a.num_rows()));
  vec::fill_uniform(x, rng);
  Vector y1(x.size());
  Vector y2(x.size());
  a.spmv(x, y1);
  a.spmv_omp(x, y2);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(y1, y2), 0.0);
}

TEST(CsrMatrix, RowDotEqualsSpmvComponent) {
  const CsrMatrix a = gen::fd_laplacian_2d(5, 5);
  Rng rng(9);
  Vector x(static_cast<std::size_t>(a.num_rows()));
  vec::fill_uniform(x, rng);
  Vector y(x.size());
  a.spmv(x, y);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.row_dot(i, x), y[i]);
  }
}

TEST(CsrMatrix, ResidualDefinition) {
  const CsrMatrix a = tiny();
  Vector x{1.0, 1.0, 1.0};
  Vector b{1.0, 0.0, 1.0};
  Vector r(3);
  a.residual(x, b, r);
  EXPECT_DOUBLE_EQ(r[0], 1.0 - 1.0);
  EXPECT_DOUBLE_EQ(r[1], 0.0 - 0.0);
  EXPECT_DOUBLE_EQ(r[2], 1.0 - 1.0);
}

TEST(CsrMatrix, DiagonalExtraction) {
  const CsrMatrix a = tiny();
  const Vector d = a.diagonal();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
}

TEST(CsrMatrix, TransposeOfSymmetricEqualsSelf) {
  const CsrMatrix a = gen::fd_laplacian_2d(7, 4);
  EXPECT_TRUE(a.transpose() == a);
}

TEST(CsrMatrix, TransposeNonSymmetric) {
  // [1 2]
  // [0 3]
  const CsrMatrix a(2, 2, {0, 2, 3}, {0, 1, 1}, {1, 2, 3});
  const CsrMatrix t = a.transpose();
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(t.at(1, 1), 3.0);
  EXPECT_TRUE(t.has_sorted_rows());
}

TEST(CsrMatrix, DoubleTransposeIsIdentityOp) {
  const CsrMatrix a(2, 3, {0, 2, 3}, {0, 2, 1}, {1.5, -2.0, 4.0});
  EXPECT_TRUE(a.transpose().transpose() == a);
}

TEST(CsrMatrix, SymmetryPredicates) {
  EXPECT_TRUE(tiny().is_symmetric());
  const CsrMatrix ns(2, 2, {0, 2, 3}, {0, 1, 1}, {1, 2, 3});
  EXPECT_FALSE(ns.is_symmetric());
}

TEST(CsrMatrix, HasFullDiagonal) {
  EXPECT_TRUE(tiny().has_full_diagonal());
  const CsrMatrix missing(2, 2, {0, 1, 2}, {1, 0}, {1.0, 1.0});
  EXPECT_FALSE(missing.has_full_diagonal());
}

TEST(CsrMatrix, IdentityBehaves) {
  const CsrMatrix eye = csr_identity(4);
  EXPECT_EQ(eye.num_nonzeros(), 4);
  Vector x{1, 2, 3, 4};
  Vector y(4);
  eye.spmv(x, y);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(x, y), 0.0);
}

TEST(CsrMatrix, ValidationRejectsBadRowPtr) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 2}, {0, 1}, {1, 1}), std::logic_error);
  EXPECT_THROW(CsrMatrix(2, 2, {0, 2, 1}, {0, 1}, {1, 1}), std::logic_error);
}

TEST(CsrMatrix, ValidationRejectsBadColumns) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 2}, {0, 5}, {1, 1}), std::logic_error);
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 2}, {0, -1}, {1, 1}), std::logic_error);
}

TEST(CsrMatrix, EmptyMatrixIsValid) {
  const CsrMatrix a(0, 0, {0}, {}, {});
  EXPECT_EQ(a.num_rows(), 0);
  EXPECT_EQ(a.num_nonzeros(), 0);
}

TEST(CsrMatrix, PaperFdCountsMatchTable) {
  // The figure captions state exact (rows, nonzeros) pairs; our grid
  // reconstructions must match them.
  EXPECT_EQ(gen::paper_fd_40().num_rows(), 40);
  EXPECT_EQ(gen::paper_fd_40().num_nonzeros(), 174);
  EXPECT_EQ(gen::paper_fd_68().num_rows(), 68);
  EXPECT_EQ(gen::paper_fd_68().num_nonzeros(), 298);
  EXPECT_EQ(gen::paper_fd_272().num_rows(), 272);
  EXPECT_EQ(gen::paper_fd_272().num_nonzeros(), 1294);
  EXPECT_EQ(gen::paper_fd_4624().num_rows(), 4624);
  EXPECT_EQ(gen::paper_fd_4624().num_nonzeros(), 22848);
}

}  // namespace
}  // namespace ajac
