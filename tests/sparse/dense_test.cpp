#include "ajac/sparse/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac {
namespace {

TEST(DenseMatrix, IdentityAndIndexing) {
  DenseMatrix eye = DenseMatrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  eye(0, 1) = 5.0;
  EXPECT_DOUBLE_EQ(eye(0, 1), 5.0);
}

TEST(DenseMatrix, FromCsrMatchesEntries) {
  const CsrMatrix a = gen::fd_laplacian_2d(3, 2);
  const DenseMatrix d = DenseMatrix::from_csr(a);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    for (index_t j = 0; j < a.num_cols(); ++j) {
      EXPECT_DOUBLE_EQ(d(i, j), a.at(i, j));
    }
  }
}

TEST(DenseMatrix, GemvMatchesCsrSpmv) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 3);
  const DenseMatrix d = DenseMatrix::from_csr(a);
  Vector x(static_cast<std::size_t>(a.num_rows()));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i) - 3.0;
  Vector y1(x.size());
  Vector y2(x.size());
  a.spmv(x, y1);
  d.gemv(x, y2);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(DenseMatrix, MultiplyAgainstHandComputed) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  DenseMatrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const DenseMatrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(DenseMatrix, TransposeSwapsEntries) {
  DenseMatrix a(2, 3);
  a(0, 2) = 7.0;
  a(1, 0) = -2.0;
  const DenseMatrix t = a.transpose();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -2.0);
}

TEST(DenseMatrix, InducedNorms) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = -2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  EXPECT_DOUBLE_EQ(a.norm_inf(), 7.0);  // max row sum
  EXPECT_DOUBLE_EQ(a.norm1(), 6.0);     // max col sum
  EXPECT_DOUBLE_EQ(a.norm_fro(), std::sqrt(1.0 + 4 + 9 + 16));
}

TEST(DenseMatrix, NormDualityUnderTranspose) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 2) = -5;
  a(1, 1) = 2;
  EXPECT_DOUBLE_EQ(a.norm1(), a.transpose().norm_inf());
  EXPECT_DOUBLE_EQ(a.norm_inf(), a.transpose().norm1());
}

TEST(DenseMatrix, SymmetryCheck) {
  DenseMatrix a(2, 2);
  a(0, 1) = 2;
  a(1, 0) = 2;
  EXPECT_TRUE(a.is_symmetric());
  a(1, 0) = 2.0001;
  EXPECT_FALSE(a.is_symmetric(1e-8));
  EXPECT_TRUE(a.is_symmetric(1e-3));
}

TEST(DenseMatrix, MaxAbsDiff) {
  DenseMatrix a(2, 2, 1.0);
  DenseMatrix b(2, 2, 1.0);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
  b(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 2.0);
}

TEST(DenseMatrix, FromCsrSumsDuplicateEntries) {
  // A CSR with duplicate columns in a row (legal storage) accumulates.
  const CsrMatrix a(1, 2, {0, 2}, {1, 1}, {2.0, 3.0});
  const DenseMatrix d = DenseMatrix::from_csr(a);
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
}

}  // namespace
}  // namespace ajac
