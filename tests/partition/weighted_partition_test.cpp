#include <gtest/gtest.h>

#include "ajac/gen/analogues.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac::partition {
namespace {

/// A matrix with deliberately skewed row densities: a 1D chain plus one
/// "hub" row coupled to many others (arrow-like pattern).
CsrMatrix skewed_matrix(index_t n) {
  CooBuilder coo(n, n);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 4.0);
  for (index_t i = 0; i + 1 < n; ++i) coo.add_symmetric(i, i + 1, -1.0);
  // Hub: row 0 couples to every 3rd row.
  for (index_t j = 3; j < n; j += 3) coo.add_symmetric(0, j, -0.01);
  return coo.to_csr();
}

index_t part_nnz(const CsrMatrix& a, const Partition& p, index_t k) {
  index_t nnz = 0;
  for (index_t i = p.part_begin(k); i < p.part_end(k); ++i) {
    nnz += a.row_nnz(i);
  }
  return nnz;
}

TEST(WeightedPartition, BalancesNonzerosOnSkewedMatrix) {
  const CsrMatrix a = skewed_matrix(300);
  const index_t parts = 6;
  const auto by_rows = graph_growing_partition(a, parts, 1, false);
  const auto by_nnz = graph_growing_partition(a, parts, 1, true);

  auto nnz_imbalance = [&](const PartitionedSystem& sys) {
    const CsrMatrix pa = sys.perm.apply_symmetric(a);
    index_t max_nnz = 0;
    for (index_t k = 0; k < parts; ++k) {
      max_nnz = std::max(max_nnz, part_nnz(pa, sys.partition, k));
    }
    const double ideal =
        static_cast<double>(a.num_nonzeros()) / static_cast<double>(parts);
    return static_cast<double>(max_nnz) / ideal;
  };
  // Weighted partitioning should balance work at least as well as (and on
  // this skewed matrix, strictly better than) row balancing.
  EXPECT_LE(nnz_imbalance(by_nnz), nnz_imbalance(by_rows) + 1e-12);
  EXPECT_LE(nnz_imbalance(by_nnz), 1.35);
}

TEST(WeightedPartition, StillCoversAllRows) {
  const CsrMatrix a = skewed_matrix(100);
  const auto sys = graph_growing_partition(a, 7, 2, true);
  EXPECT_EQ(sys.partition.num_rows(), 100);
  EXPECT_EQ(sys.partition.num_parts(), 7);
  for (index_t k = 0; k < 7; ++k) {
    EXPECT_GE(sys.partition.part_size(k), 1);
  }
}

TEST(WeightedPartition, EqualWeightsMatchRowBalancing) {
  // On a constant-degree-ish grid both modes produce near-equal sizes.
  const CsrMatrix a = gen::fd_laplacian_2d(12, 12);
  const auto by_nnz = graph_growing_partition(a, 8, 1, true);
  index_t max_size = 0;
  index_t min_size = a.num_rows();
  for (index_t k = 0; k < 8; ++k) {
    max_size = std::max(max_size, by_nnz.partition.part_size(k));
    min_size = std::min(min_size, by_nnz.partition.part_size(k));
  }
  EXPECT_LE(max_size - min_size, 8);
}

TEST(WeightedPartition, WorksOnTable1Analogue) {
  const CsrMatrix a = gen::make_analogue("G3_circuit", 0.02);
  const auto sys = graph_growing_partition(a, 16, 3, true);
  const CsrMatrix pa = sys.perm.apply_symmetric(a);
  index_t max_nnz = 0;
  for (index_t k = 0; k < 16; ++k) {
    max_nnz = std::max(max_nnz, part_nnz(pa, sys.partition, k));
  }
  const double ideal =
      static_cast<double>(a.num_nonzeros()) / 16.0;
  EXPECT_LE(static_cast<double>(max_nnz), 1.4 * ideal);
}

}  // namespace
}  // namespace ajac::partition
