// Tests for nnz_balanced_partition — the blocked/sellcs paths' default
// partitioner (the facade applies it whenever SolveConfig::balance_by_nnz
// holds; see ajac.cpp). Deterministic examples pin the cut placement;
// seeded random sweeps check validity, non-emptiness, and the balance
// bound on arbitrary sparsity.

#include "ajac/partition/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac::partition {
namespace {

index_t part_nnz(const CsrMatrix& a, const Partition& p, index_t k) {
  index_t s = 0;
  for (index_t i = p.part_begin(k); i < p.part_end(k); ++i) s += a.row_nnz(i);
  return s;
}

index_t max_part_nnz(const CsrMatrix& a, const Partition& p) {
  index_t m = 0;
  for (index_t k = 0; k < p.num_parts(); ++k) {
    m = std::max(m, part_nnz(a, p, k));
  }
  return m;
}

TEST(NnzBalancedPartition, UniformRowsMatchRowBalancing) {
  // Equal-nnz rows: the nnz cuts land where the row cuts land.
  const CsrMatrix a(6, 6, {0, 2, 4, 6, 8, 10, 12}, {0, 1, 1, 2, 2, 3, 3, 4,
                    4, 5, 5, 0}, std::vector<double>(12, 1.0));
  const Partition p = nnz_balanced_partition(a, 3);
  validate(p, 6);
  EXPECT_EQ(p.block_starts, (std::vector<index_t>{0, 2, 4, 6}));
}

TEST(NnzBalancedPartition, SkewedRowsShiftTheCuts) {
  // Row 0 carries half the nonzeros of a 4-row matrix; with 2 parts the
  // cut must fall right after it, where row balancing would put it at 2.
  CooBuilder coo(4, 4);
  for (index_t j = 0; j < 4; ++j) coo.add(0, j, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(2, 2, 1.0);
  coo.add(3, 3, 1.0);
  coo.add(3, 0, 1.0);
  const CsrMatrix a = coo.to_csr();
  const Partition nnz = nnz_balanced_partition(a, 2);
  validate(nnz, 4);
  EXPECT_EQ(nnz.block_starts[1], 1);
  const Partition rows = contiguous_partition(4, 2);
  EXPECT_LT(max_part_nnz(a, nnz), max_part_nnz(a, rows));
}

TEST(NnzBalancedPartition, SinglePartAndSingleRow) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 4);
  const Partition one = nnz_balanced_partition(a, 1);
  validate(one, a.num_rows());
  EXPECT_EQ(one.num_parts(), 1);
  EXPECT_EQ(one.part_size(0), a.num_rows());

  const CsrMatrix tiny(1, 1, {0, 1}, {0}, {2.0});
  const Partition p = nnz_balanced_partition(tiny, 3);
  validate(p, 1);
  EXPECT_EQ(p.num_parts(), 3);
  index_t nonempty = 0;
  for (index_t k = 0; k < 3; ++k) nonempty += (p.part_size(k) > 0) ? 1 : 0;
  EXPECT_EQ(nonempty, 1);  // one row to give out
}

TEST(NnzBalancedPartition, RandomMatricesStayValidAndBounded) {
  // 200 seeded draws: validity, every part non-empty while rows remain,
  // and the contiguous-balance bound — no part exceeds the ideal share by
  // more than two rows' worth of nonzeros (each cut lands within one row
  // of its prefix target, and a part is bracketed by two cuts; the
  // non-emptiness clamps only ever force single-row parts, which the
  // max-row terms also cover).
  constexpr int kCases = 200;
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << c << ", AJAC_TEST_SEED base "
                 << ajac::testing::test_seed());
    Rng rng(ajac::testing::test_seed(11000 + static_cast<std::uint64_t>(c)));
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(40));
    CooBuilder coo(n, n);
    const auto entries = rng.uniform_index(
        static_cast<std::uint64_t>(n) * 4 + 1);
    for (std::uint64_t e = 0; e < entries; ++e) {
      coo.add(static_cast<index_t>(rng.uniform_index(n)),
              static_cast<index_t>(rng.uniform_index(n)),
              rng.uniform(-2.0, 2.0));
    }
    // A few heavy rows to make the nnz distribution skewed.
    for (int h = 0; h < 3; ++h) {
      const auto i = static_cast<index_t>(rng.uniform_index(n));
      for (index_t j = 0; j < n; ++j) {
        if (rng.uniform() < 0.5) coo.add(i, j, 1.0);
      }
    }
    const CsrMatrix a = coo.to_csr();
    const auto parts =
        1 + static_cast<index_t>(rng.uniform_index(8));
    const Partition p = nnz_balanced_partition(a, parts);
    validate(p, n);
    ASSERT_EQ(p.num_parts(), parts);

    index_t max_row = 0;
    for (index_t i = 0; i < n; ++i) max_row = std::max(max_row, a.row_nnz(i));
    const index_t total = a.num_nonzeros();
    EXPECT_LE(max_part_nnz(a, p), total / parts + 2 * max_row + 1);

    if (n >= parts) {
      for (index_t k = 0; k < parts; ++k) {
        EXPECT_GT(p.part_size(k), 0) << "part " << k << " empty with " << n
                                     << " rows and " << parts << " parts";
      }
    }
  }
}

TEST(NnzBalancedPartition, BeatsRowBalancingOnSkewedGrids) {
  // An FD grid with one dense appended coupling row: row balancing puts
  // the heavy row wherever it falls; nnz balancing isolates it.
  const CsrMatrix grid = gen::fd_laplacian_2d(8, 8);
  const index_t n = grid.num_rows() + 1;
  CooBuilder coo(n, n);
  for (index_t i = 0; i < grid.num_rows(); ++i) {
    const auto cols = grid.row_cols(i);
    const auto vals = grid.row_values(i);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      coo.add(i, cols[e], vals[e]);
    }
  }
  for (index_t j = 0; j < n; ++j) coo.add(n - 1, j, 1.0);
  const CsrMatrix a = coo.to_csr();
  const Partition nnz = nnz_balanced_partition(a, 4);
  const Partition rows = contiguous_partition(n, 4);
  validate(nnz, n);
  EXPECT_LE(max_part_nnz(a, nnz), max_part_nnz(a, rows));
}

TEST(NnzBalancedPartition, Deterministic) {
  const CsrMatrix a = gen::fd_laplacian_2d(9, 7);
  const Partition p1 = nnz_balanced_partition(a, 5);
  const Partition p2 = nnz_balanced_partition(a, 5);
  EXPECT_EQ(p1.block_starts, p2.block_starts);
}

}  // namespace
}  // namespace ajac::partition
