#include "ajac/partition/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac::partition {
namespace {

TEST(ContiguousPartition, BalancedSizes) {
  const Partition p = contiguous_partition(10, 3);
  EXPECT_EQ(p.num_parts(), 3);
  EXPECT_EQ(p.num_rows(), 10);
  EXPECT_EQ(p.part_size(0), 4);
  EXPECT_EQ(p.part_size(1), 3);
  EXPECT_EQ(p.part_size(2), 3);
}

TEST(ContiguousPartition, OwnerLookup) {
  const Partition p = contiguous_partition(10, 3);
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(3), 0);
  EXPECT_EQ(p.owner(4), 1);
  EXPECT_EQ(p.owner(9), 2);
}

TEST(ContiguousPartition, MorePartsThanTenRows) {
  const Partition p = contiguous_partition(4, 4);
  for (index_t k = 0; k < 4; ++k) EXPECT_EQ(p.part_size(k), 1);
}

TEST(CuthillMckee, ProducesValidPermutation) {
  const CsrMatrix a = gen::fd_laplacian_2d(7, 5);
  const Permutation p = cuthill_mckee(a);
  EXPECT_EQ(p.size(), 35);
  // Bijection is enforced by the Permutation constructor; check bandwidth
  // actually shrinks for the grid in its natural ordering permuted badly.
  const CsrMatrix reordered = p.apply_symmetric(a);
  index_t bw = 0;
  for (index_t i = 0; i < reordered.num_rows(); ++i) {
    for (index_t j : reordered.row_cols(i)) {
      bw = std::max(bw, std::abs(i - j));
    }
  }
  EXPECT_LE(bw, 7);  // RCM bandwidth of a 7x5 grid is about min(nx, ny)+1
}

TEST(CuthillMckee, HandlesDisconnectedGraphs) {
  // Two decoupled diagonal blocks.
  const CsrMatrix a(4, 4, {0, 1, 2, 3, 4}, {0, 1, 2, 3}, {1, 1, 1, 1});
  const Permutation p = cuthill_mckee(a);
  EXPECT_EQ(p.size(), 4);
}

class GraphGrowing : public ::testing::TestWithParam<index_t> {};

TEST_P(GraphGrowing, PartitionIsBalancedAndCoversAllRows) {
  const index_t parts = GetParam();
  const CsrMatrix a = gen::fd_laplacian_2d(16, 16);
  const auto sys = graph_growing_partition(a, parts, 1);
  EXPECT_EQ(sys.partition.num_parts(), parts);
  EXPECT_EQ(sys.partition.num_rows(), a.num_rows());
  const PartitionStats stats = compute_stats(
      sys.perm.apply_symmetric(a), sys.partition);
  EXPECT_LE(stats.imbalance, 0.15);
  EXPECT_GE(stats.min_part, 1);
}

TEST_P(GraphGrowing, BeatsNaiveContiguousCut) {
  const index_t parts = GetParam();
  const CsrMatrix a = gen::fd_laplacian_2d(16, 16);
  const auto sys = graph_growing_partition(a, parts, 1);
  const PartitionStats smart =
      compute_stats(sys.perm.apply_symmetric(a), sys.partition);
  const PartitionStats naive =
      compute_stats(a, contiguous_partition(a.num_rows(), parts));
  // Graph growing should never be much worse than slab partitioning on a
  // grid, and usually better for larger part counts.
  EXPECT_LE(smart.edge_cut, naive.edge_cut * 2);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, GraphGrowing,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(GraphGrowing, SinglePartIsWholeMatrix) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 4);
  const auto sys = graph_growing_partition(a, 1, 1);
  EXPECT_EQ(sys.partition.num_parts(), 1);
  EXPECT_EQ(sys.partition.part_size(0), 16);
  const PartitionStats stats = compute_stats(
      sys.perm.apply_symmetric(a), sys.partition);
  EXPECT_EQ(stats.edge_cut, 0);
}

TEST(GraphGrowing, OnePartPerRow) {
  const CsrMatrix a = gen::fd_laplacian_2d(4, 4);
  const auto sys = graph_growing_partition(a, 16, 1);
  for (index_t k = 0; k < 16; ++k) {
    EXPECT_EQ(sys.partition.part_size(k), 1);
  }
}

TEST(GraphGrowing, PermutedSystemIsEquivalent) {
  // The permuted matrix is similar to the original: same row value
  // multisets per corresponding row.
  const CsrMatrix a = gen::fd_laplacian_2d(6, 6);
  const auto sys = graph_growing_partition(a, 4, 2);
  const CsrMatrix pa = sys.perm.apply_symmetric(a);
  EXPECT_EQ(pa.num_nonzeros(), a.num_nonzeros());
  EXPECT_TRUE(pa.is_symmetric(0.0));
  for (index_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(pa.row_nnz(i), a.row_nnz(sys.perm.new_to_old(i)));
  }
}

TEST(GraphGrowing, RejectsMorePartsThanRows) {
  const CsrMatrix a = gen::fd_laplacian_2d(2, 2);
  EXPECT_THROW(graph_growing_partition(a, 5, 1), std::logic_error);
}

TEST(ValidatePartition, AcceptsWellFormedPartitions) {
  EXPECT_NO_THROW(validate(contiguous_partition(10, 3), 10));
  EXPECT_NO_THROW(validate(contiguous_partition(1, 1), 1));
  // Empty parts are legal (more parts than rows).
  EXPECT_NO_THROW(validate(contiguous_partition(2, 4), 2));
}

TEST(ValidatePartition, RejectsCorruptedBlockStarts) {
  Partition p;
  p.block_starts = {};  // no parts at all
  EXPECT_THROW(validate(p, 0), std::logic_error);
  p.block_starts = {5};  // still no parts
  EXPECT_THROW(validate(p, 5), std::logic_error);
  p.block_starts = {1, 5};  // does not start at row 0
  EXPECT_THROW(validate(p, 5), std::logic_error);
  p.block_starts = {0, 4, 2, 5};  // overlap: parts not disjoint
  EXPECT_THROW(validate(p, 5), std::logic_error);
  p.block_starts = {0, 2, 4};  // does not cover all 5 rows
  EXPECT_THROW(validate(p, 5), std::logic_error);
}

TEST(ValidatePartition, FailureNamesTheViolatedInvariant) {
  Partition p;
  p.block_starts = {0, 3};
  try {
    validate(p, 7);
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("7 rows"), std::string::npos);
  }
}

TEST(ComputeStats, CountsCutEdgesOnKnownPartition) {
  // 1D path of 4 nodes split in the middle: the single cut edge appears
  // once per direction.
  const CsrMatrix a = gen::fd_laplacian_1d(4);
  const PartitionStats stats = compute_stats(a, contiguous_partition(4, 2));
  EXPECT_EQ(stats.edge_cut, 2);
  EXPECT_EQ(stats.boundary_rows, 2);
  EXPECT_EQ(stats.max_part, 2);
  EXPECT_EQ(stats.min_part, 2);
  EXPECT_DOUBLE_EQ(stats.imbalance, 0.0);
}

}  // namespace
}  // namespace ajac::partition
