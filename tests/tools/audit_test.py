#!/usr/bin/env python3
"""Golden tests for tools/analyze/ajac_audit.py.

Three layers, mirroring how a linter regresses in practice:

 1. Fixtures: each known-bad snippet under fixtures/ must be flagged with
    exactly the expected rule ids (and the clean fixture with none) — the
    rules fire where they should.
 2. Tree: the committed sources must audit clean — the rules do not fire
    where they should not.
 3. Seeded regression: deleting one racy-ok tag from a real runtime file
    must produce a racy-ok-tag finding — the contract is actually load-
    bearing, not vacuously satisfied by the matcher missing everything.

Runs under ctest (ToolsAudit) and standalone:  python3 tests/tools/audit_test.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

TESTS_TOOLS = Path(__file__).resolve().parent
REPO_ROOT = TESTS_TOOLS.parent.parent
AUDITOR = REPO_ROOT / "tools" / "analyze" / "ajac_audit.py"
FIXTURES = TESTS_TOOLS / "fixtures"

# fixture file -> sorted list of expected rule ids (one entry per finding).
EXPECTED = {
    "untagged_relaxed.cpp": ["racy-ok-tag"],
    "unknown_tag.cpp": ["racy-ok-unknown-tag"],
    "orphan_tag.cpp": ["racy-ok-orphan"],
    "atomic_member.hpp": ["atomic-scope"],
    "raw_seq_write.cpp": ["seqlock-protocol"],
    "ring_seq_outside.cpp": ["seqlock-protocol"],
    "ring_seq_allowed.hpp": [],
    "omp_outside.cpp": ["omp-allowlist"],
    "relative_include.cpp": ["include-hygiene"],
    "raw_clock.cpp": ["clock-ban"],
    "clean.cpp": [],
    "weight_snapshot_clean.cpp": [],
}

FAILURES: list[str] = []


def fail(msg: str) -> None:
    FAILURES.append(msg)
    print(f"FAIL: {msg}", file=sys.stderr)


def run_auditor(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(AUDITOR), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def audit_json(*paths: str) -> tuple[int, list[dict]]:
    proc = run_auditor("--json", *paths)
    if proc.returncode not in (0, 1):
        fail(f"auditor crashed on {paths}: rc={proc.returncode}\n{proc.stderr}")
        return proc.returncode, []
    return proc.returncode, json.loads(proc.stdout)


def test_fixtures() -> None:
    on_disk = sorted(p.name for p in FIXTURES.iterdir() if p.suffix in (".cpp", ".hpp"))
    if on_disk != sorted(EXPECTED):
        fail(f"fixture set drifted: on disk {on_disk}, expected {sorted(EXPECTED)}")
    for name, want in EXPECTED.items():
        rc, findings = audit_json(str(FIXTURES / name))
        got = sorted(f["rule"] for f in findings)
        if got != sorted(want):
            fail(f"{name}: expected rules {sorted(want)}, got {got}")
        want_rc = 1 if want else 0
        if rc != want_rc:
            fail(f"{name}: expected exit {want_rc}, got {rc}")
        for f in findings:
            if f["file"] != str(FIXTURES / name) or f["line"] < 1:
                fail(f"{name}: finding does not point into the fixture: {f}")


def test_tree_is_clean() -> None:
    rc, findings = audit_json()  # default roots: src tests bench examples
    if rc != 0 or findings:
        rules = sorted({f["rule"] for f in findings})
        fail(f"committed tree must audit clean; got {len(findings)} "
             f"finding(s) [{', '.join(rules)}], e.g. {findings[:3]}")


def test_fixture_dir_is_skipped_in_walks() -> None:
    # Walking tests/ must not surface the intentionally-bad fixtures.
    rc, findings = audit_json("tests")
    if rc != 0 or findings:
        fail(f"directory walk leaked fixture findings: {findings[:3]}")


def test_seeded_regression() -> None:
    """Delete one racy-ok tag from a real file: the auditor must notice."""
    victim = REPO_ROOT / "src" / "runtime" / "shared_jacobi.cpp"
    text = victim.read_text()
    tagged = [ln for ln in text.split("\n") if re.search(r"racy-ok\(", ln)]
    if not tagged:
        fail(f"{victim} has no racy-ok tags to seed a regression with")
        return
    # Drop only the first tagged comment line; keep the access it blessed.
    mutated = text.replace(tagged[0] + "\n", "", 1)
    if mutated == text:
        fail("failed to strip the seeded racy-ok line")
        return
    with tempfile.TemporaryDirectory() as tmp:
        mutant = Path(tmp) / "shared_jacobi_mutant.cpp"
        # Keep the original path scoping so path-scoped rules see the file
        # as the runtime TU it is a copy of.
        mutant.write_text("// audit-as: src/runtime/shared_jacobi.cpp\n" + mutated)
        rc, findings = audit_json(str(mutant))
        rules = {f["rule"] for f in findings}
        if rc != 1 or "racy-ok-tag" not in rules:
            fail(f"seeded tag deletion not caught: rc={rc}, rules={sorted(rules)}")

        # Control: the unmutated copy must stay clean, proving the finding
        # above comes from the deletion, not from the copy mechanics.
        control = Path(tmp) / "shared_jacobi_control.cpp"
        control.write_text("// audit-as: src/runtime/shared_jacobi.cpp\n" + text)
        rc, findings = audit_json(str(control))
        if rc != 0 or findings:
            fail(f"control copy not clean: {findings[:3]}")


def test_explain_and_list() -> None:
    proc = run_auditor("--list-rules")
    if proc.returncode != 0:
        fail(f"--list-rules exited {proc.returncode}")
    listed = [ln.split()[0] for ln in proc.stdout.strip().split("\n") if ln.strip()]
    for rule in set(EXPECTED_RULES := [r for v in EXPECTED.values() for r in v]):
        if rule not in listed:
            fail(f"--list-rules is missing '{rule}'")
    for rule in listed:
        p = run_auditor("--explain", rule)
        if p.returncode != 0 or "Fix:" not in p.stdout:
            fail(f"--explain {rule}: exit {p.returncode} or no Fix: guidance")
    if run_auditor("--explain", "no-such-rule").returncode != 2:
        fail("--explain with an unknown rule must exit 2")


def main() -> int:
    if not AUDITOR.is_file():
        print(f"FAIL: auditor not found at {AUDITOR}", file=sys.stderr)
        return 1
    test_fixtures()
    test_tree_is_clean()
    test_fixture_dir_is_skipped_in_walks()
    test_seeded_regression()
    test_explain_and_list()
    if FAILURES:
        print(f"\naudit_test: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("audit_test: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
