// audit-as: src/runtime/weight_snapshot_fixture.cpp
// Golden fixture: the weight-snapshot racy-ok category, introduced for the
// residual-weighted row policy's once-per-cadence |r_i| reads, is a
// registered tag. A relaxed load blessed with it must audit clean.
// Expected findings: none.
#include <atomic>

double weight_snapshot(std::atomic<double>& r) {
  // racy-ok(weight-snapshot): heuristic sampling weight captured once per
  // refresh cadence; staleness biases row choice, never correctness.
  return r.load(std::memory_order_relaxed);
}
