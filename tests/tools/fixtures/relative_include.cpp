// Golden fixture: a relative project include, which silently re-resolves
// when either file moves. Expected finding: include-hygiene.
#include "../util/helpers.hpp"

int fixture_value() { return 1; }
