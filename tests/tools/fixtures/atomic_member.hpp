#pragma once
// audit-as: src/model/include/ajac/model/leaky_state.hpp
// Golden fixture: a raw std::atomic member in a module that is sequential
// by contract. Expected finding: atomic-scope.
#include <atomic>

namespace ajac::model {

struct LeakyState {
  std::atomic<long> updates{0};
};

}  // namespace ajac::model
