// audit-as: src/obs/include/ajac/obs/event_ring.hpp
// Golden fixture: the telemetry event ring is the third seqlock protocol
// header — its per-slot sequence counter accesses (the publish-side odd/
// even stores and the poll-side validated loads) must audit clean when
// scoped to that path.
// Expected findings: none.
#include <atomic>
#include <cstdint>

struct FixtureSlot {
  std::atomic<std::uint64_t> seq{0};
};

inline void open_slot(FixtureSlot& s, std::uint64_t h) {
  // racy-ok(seqlock-open): odd value parks readers until the matching
  // release store of 2h+2 publishes the payload.
  s.seq.store(2 * h + 1, std::memory_order_relaxed);
}

inline bool validate_slot(const FixtureSlot& s, std::uint64_t want) {
  return s.seq.load(std::memory_order_acquire) == want;
}
