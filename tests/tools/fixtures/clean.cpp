// audit-as: src/runtime/clean_fixture.cpp
// Golden fixture: obeys every rule — tagged relaxed access with a
// registered tag, quoted module include path mentioned only in comments,
// no raw clock, no seqlock pokes. Expected findings: none.
#include <atomic>

int clean(std::atomic<int>& a) {
  // racy-ok(monotonic): counter only grows; a stale read defers, never
  // reverses, the caller's decision.
  return a.load(std::memory_order_relaxed);
}
