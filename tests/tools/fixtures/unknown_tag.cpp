// Golden fixture: a racy-ok tag that is not registered in racy_ok.toml.
// Expected finding: racy-ok-unknown-tag.
#include <atomic>

int unknown_tag(std::atomic<int>& a) {
  // racy-ok(totally-fine): a category minted ad hoc at the call site.
  return a.load(std::memory_order_relaxed);
}
