// audit-as: src/runtime/peek_version.cpp
// Golden fixture: a seqlock counter poked outside the protocol headers —
// an innocent-looking "peek" that skips the retry discipline. The access
// uses acquire ordering so the only violation is the protocol one.
// Expected finding: seqlock-protocol.
#include <atomic>
#include <cstdint>

long peek(const std::atomic<std::int64_t>* seq_, int i) {
  return static_cast<long>(seq_[i].load(std::memory_order_acquire) / 2);
}
