// audit-as: src/obs/ring_peek.cpp
// Golden fixture: a telemetry-ring slot sequence counter poked from a
// consumer TU instead of going through EventRing::publish()/poll(). The
// slot seqlock is protocol-scoped exactly like the shared-vector one;
// only ajac/obs/event_ring.hpp may touch the counter directly.
// Expected finding: seqlock-protocol.
#include <atomic>
#include <cstdint>

bool slot_ready(const std::atomic<std::uint64_t>& slot_seq,
                std::uint64_t want) {
  return slot_seq.load(std::memory_order_acquire) == want;
}
