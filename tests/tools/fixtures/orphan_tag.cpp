// Golden fixture: a racy-ok comment whose access was edited away.
// Expected finding: racy-ok-orphan.
#include <atomic>

int orphan(std::atomic<int>& a) {
  // racy-ok(monotonic): counter only grows; stale reads defer a decision.
  int x = 1;
  x += 2;
  x += 3;
  x += 4;
  return x + a.load(std::memory_order_acquire);
}
