// Golden fixture: a relaxed atomic access with no racy-ok justification.
// Expected finding: racy-ok-tag.
#include <atomic>

int untagged(std::atomic<int>& a) {
  return a.load(std::memory_order_relaxed);
}
