// audit-as: src/gen/parallel_fill.cpp
// Golden fixture: an OpenMP region outside the runtime/bench/sparse-kernel
// allowlist — threads the fault injector and metrics registry would never
// know about. Expected finding: omp-allowlist.
#include <vector>

void fill(std::vector<double>& v) {
#pragma omp parallel for
  for (long i = 0; i < static_cast<long>(v.size()); ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<double>(i);
  }
}
