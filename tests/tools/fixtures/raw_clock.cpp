// audit-as: src/solvers/timed_sweep.cpp
// Golden fixture: an inline wall-clock read outside timer.hpp/src/obs,
// which desynchronizes instrumented and uninstrumented runs.
// Expected finding: clock-ban.
#include <chrono>

double now_seconds() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}
