#include <gtest/gtest.h>

#include <cmath>

#include "ajac/eig/lanczos.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac::eig {
namespace {

TEST(OptimalOmega, ClosedFormOn1dLaplacian) {
  // Scaled 1D Laplacian spectrum: 1 - cos(k pi/(n+1)); min+max = 2, so
  // omega* = 1 by symmetry.
  const double omega = optimal_jacobi_omega(gen::fd_laplacian_1d(20));
  EXPECT_NEAR(omega, 1.0, 1e-8);
}

TEST(OptimalOmega, MakesDivergentFeMatrixConverge) {
  gen::FeMeshOptions fo;
  fo.nx = 30;
  fo.ny = 20;
  fo.jitter = 0.35;
  fo.jitter_fraction = 0.15;
  fo.seed = 20180521;
  const auto p = gen::make_problem("fe", gen::fe_laplacian_2d(fo), 3);
  const double omega = optimal_jacobi_omega(p.a);
  EXPECT_LT(omega, 1.0);  // divergent Jacobi needs damping

  solvers::SolveOptions so;
  so.tolerance = 0.0;
  so.max_iterations = 300;
  const auto plain = solvers::jacobi(p.a, p.b, p.x0, so);
  const auto damped = solvers::weighted_jacobi(p.a, p.b, p.x0, omega, so);
  EXPECT_GT(plain.final_rel_residual, 1.0);
  EXPECT_LT(damped.final_rel_residual, 0.5);
}

TEST(OptimalOmega, BeatsArbitraryDampingOnFd) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(14, 14), 5);
  const double omega = optimal_jacobi_omega(p.a);
  solvers::SolveOptions so;
  so.tolerance = 1e-8;
  so.max_iterations = 1000000;
  const auto best = solvers::weighted_jacobi(p.a, p.b, p.x0, omega, so);
  const auto under = solvers::weighted_jacobi(p.a, p.b, p.x0, 0.6, so);
  ASSERT_TRUE(best.converged);
  ASSERT_TRUE(under.converged);
  EXPECT_LE(best.iterations, under.iterations);
}

TEST(OptimalOmega, RejectsIndefiniteMatrix) {
  // A with a negative eigenvalue after scaling: lambda_min < 0.
  // Construct I - 2*adjacency on a path: diag 1, offdiag -2 => indefinite.
  const index_t n = 6;
  std::vector<index_t> row_ptr{0};
  std::vector<index_t> col_idx;
  std::vector<double> values;
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) {
      col_idx.push_back(i - 1);
      values.push_back(-2.0);
    }
    col_idx.push_back(i);
    values.push_back(1.0);
    if (i + 1 < n) {
      col_idx.push_back(i + 1);
      values.push_back(-2.0);
    }
    row_ptr.push_back(static_cast<index_t>(col_idx.size()));
  }
  const CsrMatrix a(n, n, std::move(row_ptr), std::move(col_idx),
                    std::move(values));
  EXPECT_THROW({ [[maybe_unused]] const double w = optimal_jacobi_omega(a); }, std::logic_error);
}

}  // namespace
}  // namespace ajac::eig
