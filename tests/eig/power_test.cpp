#include "ajac/eig/power.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/scaling.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

TEST(PowerMethod, DiagonalMatrixDominantEigenvalue) {
  const CsrMatrix d(3, 3, {0, 1, 2, 3}, {0, 1, 2}, {1.0, -5.0, 2.0});
  const auto r = eig::power_method(eig::make_operator(d));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.magnitude, 5.0, 1e-8);
  EXPECT_NEAR(r.eigenvalue, -5.0, 1e-8);
}

TEST(PowerMethod, EigenvectorIsReturned) {
  const CsrMatrix d(2, 2, {0, 1, 2}, {0, 1}, {3.0, 1.0});
  const auto r = eig::power_method(eig::make_operator(d));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(std::abs(r.eigenvector[0]), 1.0, 1e-6);
  EXPECT_NEAR(r.eigenvector[1], 0.0, 1e-6);
}

TEST(PowerMethod, JacobiRhoMatchesClosedFormOn2dGrid) {
  const index_t nx = 5, ny = 8;
  const double rho = eig::spectral_radius_jacobi(gen::fd_laplacian_2d(nx, ny));
  EXPECT_NEAR(rho, testing::fd2d_jacobi_rho(nx, ny), 1e-6);
}

TEST(PowerMethod, HandlesPlusMinusDominantPair) {
  // The FD Jacobi matrix has a symmetric spectrum (+rho and -rho are both
  // dominant); the magnitude-stabilization path must still converge.
  const auto op = eig::make_jacobi_operator(gen::fd_laplacian_2d(6, 6));
  const auto r = eig::power_method(op);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.magnitude, testing::fd2d_jacobi_rho(6, 6), 1e-6);
}

TEST(PowerMethod, AbsJacobiBoundsJacobi) {
  // rho(G) <= rho(|G|) always.
  const CsrMatrix a = gen::fd_laplacian_2d(4, 6);
  const double rho = eig::spectral_radius_jacobi(a);
  const double rho_abs = eig::spectral_radius_abs_jacobi(a);
  EXPECT_LE(rho, rho_abs + 1e-9);
}

TEST(PowerMethod, AbsJacobiEqualsJacobiForNonnegativeG) {
  // For the FD Laplacian G = I - A/4 has nonnegative entries, so |G| = G.
  const CsrMatrix a = gen::fd_laplacian_2d(5, 5);
  EXPECT_NEAR(eig::spectral_radius_jacobi(a),
              eig::spectral_radius_abs_jacobi(a), 1e-6);
}

TEST(PowerMethod, ChazanMirankerConditionOnWddMatrix) {
  // W.D.D. with unit diagonal => rho(|G|) <= 1; for irreducibly dominant
  // FD matrices it is strictly below 1 (asynchronous Jacobi converges).
  const double rho_abs =
      eig::spectral_radius_abs_jacobi(gen::fd_laplacian_2d(7, 7));
  EXPECT_LT(rho_abs, 1.0);
}

TEST(PowerMethod, RespectsIterationCap) {
  eig::PowerOptions opts;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;  // unsatisfiable
  const auto r =
      eig::power_method(eig::make_operator(gen::fd_laplacian_2d(4, 4)), opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

TEST(PowerMethod, NilpotentOperatorGivesZero) {
  // Strictly upper triangular: power iteration lands in the null space.
  const CsrMatrix n(2, 2, {0, 1, 1}, {1}, {1.0});
  const auto r = eig::power_method(eig::make_operator(n));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.magnitude, 0.0, 1e-12);
}

}  // namespace
}  // namespace ajac
