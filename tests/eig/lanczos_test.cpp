#include "ajac/eig/lanczos.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ajac/eig/power.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/scaling.hpp"
#include "test_helpers.hpp"

namespace ajac {
namespace {

TEST(TridiagEigenvalues, DiagonalCase) {
  const auto ev = eig::tridiag_eigenvalues({3.0, -1.0, 2.0}, {0.0, 0.0});
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_NEAR(ev[0], -1.0, 1e-12);
  EXPECT_NEAR(ev[1], 2.0, 1e-12);
  EXPECT_NEAR(ev[2], 3.0, 1e-12);
}

TEST(TridiagEigenvalues, TwoByTwoClosedForm) {
  // [[a, b], [b, c]] eigenvalues: (a+c)/2 +- sqrt(((a-c)/2)^2 + b^2).
  const double a = 2.0, b = -0.7, c = -1.0;
  const auto ev = eig::tridiag_eigenvalues({a, c}, {b});
  const double mid = (a + c) / 2.0;
  const double rad = std::sqrt((a - c) * (a - c) / 4.0 + b * b);
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_NEAR(ev[0], mid - rad, 1e-12);
  EXPECT_NEAR(ev[1], mid + rad, 1e-12);
}

TEST(TridiagEigenvalues, Laplacian1dClosedForm) {
  // tridiag(-1,2,-1) of size m: lambda_k = 2 - 2 cos(k pi/(m+1)).
  const index_t m = 12;
  std::vector<double> alpha(m, 2.0);
  std::vector<double> beta(m - 1, -1.0);
  const auto ev = eig::tridiag_eigenvalues(alpha, beta);
  for (index_t k = 1; k <= m; ++k) {
    const double expect =
        2.0 - 2.0 * std::cos(M_PI * static_cast<double>(k) /
                             static_cast<double>(m + 1));
    EXPECT_NEAR(ev[k - 1], expect, 1e-10);
  }
}

TEST(TridiagEigenvalues, EmptyAndSingle) {
  EXPECT_TRUE(eig::tridiag_eigenvalues({}, {}).empty());
  const auto ev = eig::tridiag_eigenvalues({4.2}, {});
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_DOUBLE_EQ(ev[0], 4.2);
}

TEST(Lanczos, ExtremeEigenvaluesOf1dLaplacian) {
  const index_t n = 40;
  const CsrMatrix a = gen::fd_laplacian_1d(n);
  const auto r = eig::lanczos_extreme(eig::make_operator(a));
  EXPECT_TRUE(r.converged);
  const double lmin =
      2.0 - 2.0 * std::cos(M_PI / static_cast<double>(n + 1));
  const double lmax =
      2.0 - 2.0 * std::cos(M_PI * static_cast<double>(n) /
                           static_cast<double>(n + 1));
  EXPECT_NEAR(r.lambda_min, lmin, 1e-8);
  EXPECT_NEAR(r.lambda_max, lmax, 1e-8);
}

TEST(Lanczos, ExactAfterNStepsOnSmallMatrix) {
  // Krylov space of dimension n is invariant: Ritz values are exact.
  const CsrMatrix a = gen::fd_laplacian_1d(6);
  eig::LanczosOptions opts;
  opts.max_steps = 6;
  opts.tolerance = 0.0;
  const auto r = eig::lanczos_extreme(eig::make_operator(a), opts);
  ASSERT_EQ(r.ritz_values.size(), 6u);
  for (index_t k = 1; k <= 6; ++k) {
    const double expect = 2.0 - 2.0 * std::cos(M_PI * k / 7.0);
    EXPECT_NEAR(r.ritz_values[k - 1], expect, 1e-9);
  }
}

TEST(Lanczos, JacobiRhoMatchesClosedForm) {
  const index_t nx = 16, ny = 17;
  const double rho =
      eig::jacobi_spectral_radius_spd(gen::fd_laplacian_2d(nx, ny));
  EXPECT_NEAR(rho, testing::fd2d_jacobi_rho(nx, ny), 1e-8);
}

TEST(Lanczos, AgreesWithPowerMethod) {
  const CsrMatrix a = gen::fd_laplacian_2d(9, 11);
  const double via_lanczos = eig::jacobi_spectral_radius_spd(a);
  const double via_power = eig::spectral_radius_jacobi(a);
  EXPECT_NEAR(via_lanczos, via_power, 1e-5);
}

TEST(Lanczos, PositiveDefinitenessWitness) {
  // lambda_min > 0 certifies SPD for the scaled FD matrix.
  const CsrMatrix s = scale_to_unit_diagonal(gen::fd_laplacian_2d(8, 8));
  const auto r = eig::lanczos_extreme(eig::make_operator(s));
  EXPECT_GT(r.lambda_min, 0.0);
  EXPECT_LT(r.lambda_max, 2.0);  // W.D.D. with unit diagonal
}

}  // namespace
}  // namespace ajac
