#include "ajac/eig/dense_eig.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac {
namespace {

TEST(DenseEig, DiagonalMatrix) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = -1;
  a(2, 2) = 2;
  const auto r = eig::dense_symmetric_eig(a);
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(r.eigenvalues.size(), 3u);
  EXPECT_NEAR(r.eigenvalues[0], -1, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 2, 1e-12);
  EXPECT_NEAR(r.eigenvalues[2], 3, 1e-12);
}

TEST(DenseEig, TwoByTwoClosedForm) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = a(1, 0) = 2.0;
  a(1, 1) = -1.0;
  const auto r = eig::dense_symmetric_eig(a);
  const double rad = std::sqrt(1.0 + 4.0);
  EXPECT_NEAR(r.eigenvalues[0], -rad, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], rad, 1e-12);
}

TEST(DenseEig, EigenpairsSatisfyDefinition) {
  const CsrMatrix grid = gen::fd_laplacian_2d(4, 4);
  const DenseMatrix a = DenseMatrix::from_csr(grid);
  const auto r = eig::dense_symmetric_eig(a);
  ASSERT_TRUE(r.converged);
  const index_t n = a.num_rows();
  for (index_t k = 0; k < n; ++k) {
    Vector v(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) v[i] = r.eigenvectors(i, k);
    Vector av(v.size());
    a.gemv(v, av);
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], r.eigenvalues[k] * v[i], 1e-9);
    }
  }
}

TEST(DenseEig, EigenvectorsAreOrthonormal) {
  const DenseMatrix a = DenseMatrix::from_csr(gen::fd_laplacian_2d(3, 4));
  const auto r = eig::dense_symmetric_eig(a);
  const index_t n = a.num_rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t k = j; k < n; ++k) {
      double dot = 0.0;
      for (index_t i = 0; i < n; ++i) {
        dot += r.eigenvectors(i, j) * r.eigenvectors(i, k);
      }
      EXPECT_NEAR(dot, j == k ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(DenseEig, TraceAndDeterminantInvariants) {
  const DenseMatrix a = DenseMatrix::from_csr(gen::fd_laplacian_1d(7));
  const auto r = eig::dense_symmetric_eig(a);
  double trace = 0.0;
  for (index_t i = 0; i < 7; ++i) trace += a(i, i);
  double sum = 0.0;
  for (double ev : r.eigenvalues) sum += ev;
  EXPECT_NEAR(sum, trace, 1e-10);
}

TEST(DenseEig, Laplacian1dClosedForm) {
  const index_t n = 9;
  const DenseMatrix a = DenseMatrix::from_csr(gen::fd_laplacian_1d(n));
  const auto r = eig::dense_symmetric_eig(a);
  for (index_t k = 1; k <= n; ++k) {
    EXPECT_NEAR(r.eigenvalues[k - 1],
                2.0 - 2.0 * std::cos(M_PI * k / static_cast<double>(n + 1)),
                1e-10);
  }
}

TEST(DenseEig, RejectsNonSymmetric) {
  DenseMatrix a(2, 2);
  a(0, 1) = 1.0;
  EXPECT_THROW(eig::dense_symmetric_eig(a), std::logic_error);
}

TEST(DenseSpectralRadiusPower, MatchesSymmetricSolver) {
  const DenseMatrix a = DenseMatrix::from_csr(gen::fd_laplacian_1d(8));
  const auto sym = eig::dense_symmetric_eig(a);
  const double rho = eig::dense_spectral_radius_power(a);
  EXPECT_NEAR(rho, std::abs(sym.eigenvalues.back()), 1e-6);
}

TEST(DenseSpectralRadiusPower, NonsymmetricBlockTriangular) {
  // [[1, 0], [g, 0.5]]: spectrum {1, 0.5}, dominant 1.
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 0) = 0.3;
  a(1, 1) = 0.5;
  EXPECT_NEAR(eig::dense_spectral_radius_power(a), 1.0, 1e-6);
}

}  // namespace
}  // namespace ajac
