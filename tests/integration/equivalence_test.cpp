// Cross-backend equivalence: the same algorithm implemented four times
// (reference solver, model executor, shared-memory runtime, distributed
// simulator) must produce identical synchronous iterates.

#include <gtest/gtest.h>

#include "ajac/core/ajac.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/sparse/vector_ops.hpp"

namespace ajac {
namespace {

class SyncEquivalence : public ::testing::TestWithParam<index_t> {};

TEST_P(SyncEquivalence, AllFourBackendsAgreeBitwise) {
  const index_t iterations = GetParam();
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(9, 7), 3);

  solvers::SolveOptions so;
  so.tolerance = 0.0;
  so.max_iterations = iterations;
  const Vector ref = solvers::jacobi(p.a, p.b, p.x0, so).x;

  model::ExecutorOptions mo;
  mo.tolerance = 0.0;
  mo.max_steps = iterations;
  EXPECT_DOUBLE_EQ(
      vec::max_abs_diff(model::run_synchronous(p.a, p.b, p.x0, mo).x, ref),
      0.0);

  runtime::SharedOptions ro;
  ro.num_threads = 3;
  ro.synchronous = true;
  ro.tolerance = 0.0;
  ro.max_iterations = iterations;
  ro.record_history = false;
  EXPECT_DOUBLE_EQ(
      vec::max_abs_diff(runtime::solve_shared(p.a, p.b, p.x0, ro).x, ref),
      0.0);

  distsim::DistOptions dopts;
  dopts.num_processes = 7;
  dopts.synchronous = true;
  dopts.max_iterations = iterations;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 7);
  EXPECT_DOUBLE_EQ(
      vec::max_abs_diff(
          distsim::solve_distributed(p.a, p.b, p.x0, part, dopts).x, ref),
      0.0);
}

INSTANTIATE_TEST_SUITE_P(IterationCounts, SyncEquivalence,
                         ::testing::Values(1, 2, 5, 17, 64));

TEST(AsyncEquivalence, AllAsyncBackendsReachTheSameFixedPoint) {
  // Asynchronous orderings differ, but the fixed point x* = A^{-1} b is
  // shared; drive all backends to a tight tolerance and compare.
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(8, 8), 5);
  const double tol = 1e-9;

  SolveConfig seq;
  seq.backend = Backend::kSequential;
  seq.tolerance = tol;
  seq.max_iterations = 1000000;
  const Solution s0 = solve(p.a, p.b, p.x0, seq);
  ASSERT_TRUE(s0.converged);

  SolveConfig shared;
  shared.backend = Backend::kSharedMemory;
  shared.parallelism = 4;
  shared.tolerance = tol;
  shared.max_iterations = 1000000;
  const Solution s1 = solve(p.a, p.b, p.x0, shared);
  ASSERT_TRUE(s1.converged);
  EXPECT_NEAR(vec::max_abs_diff(s0.x, s1.x), 0.0, 1e-6);

  SolveConfig dist;
  dist.backend = Backend::kDistributedSim;
  dist.parallelism = 8;
  dist.tolerance = tol;
  dist.max_iterations = 1000000;
  const Solution s2 = solve(p.a, p.b, p.x0, dist);
  ASSERT_TRUE(s2.converged);
  EXPECT_NEAR(vec::max_abs_diff(s0.x, s2.x), 0.0, 1e-6);
}

TEST(ModelMatchesRuntime, DelayExperimentShapesAgree) {
  // Fig. 4 validation at test scale: for the same delay, the model's
  // residual-vs-step curve and the shared-memory runtime's
  // residual-vs-iteration curve both (a) converge without delay and
  // (b) converge more slowly with a large delay.
  const auto p = gen::make_problem("fd68", gen::paper_fd_68(), 7);
  const index_t n = p.a.num_rows();

  model::ExecutorOptions eo;
  eo.tolerance = 1e-3;
  eo.max_steps = 100000;
  model::DelayedRowsSchedule fast(n, {{n / 2, 1}});
  model::DelayedRowsSchedule slow(n, {{n / 2, 50}});
  const auto mr_fast = model::run_model(p.a, p.b, p.x0, fast, eo);
  const auto mr_slow = model::run_model(p.a, p.b, p.x0, slow, eo);
  ASSERT_TRUE(mr_fast.converged);
  ASSERT_TRUE(mr_slow.converged);
  EXPECT_GT(mr_slow.steps, mr_fast.steps);
}

}  // namespace
}  // namespace ajac
