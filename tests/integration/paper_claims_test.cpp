// End-to-end checks of the paper's headline claims, run at reduced scale
// so the whole suite stays fast. The full-scale versions live in bench/.

#include <gtest/gtest.h>

#include "ajac/core/ajac.hpp"
#include "ajac/eig/lanczos.hpp"
#include "ajac/gen/analogues.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/model/theory.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/sparse/submatrix.hpp"
#include "ajac/sparse/vector_ops.hpp"

namespace ajac {
namespace {

// --- Claim (Sec. IV-C / Fig. 3): with one delayed row, the asynchronous
// model converges in far less model time than the synchronous model, and
// the speedup grows with the delay before plateauing. ---
TEST(PaperClaims, AsyncModelSpeedupGrowsWithDelay) {
  const auto p = gen::make_problem("fd68", gen::paper_fd_68(), 11);
  const index_t n = p.a.num_rows();
  model::ExecutorOptions eo;
  eo.tolerance = 1e-3;
  eo.max_steps = 200000;

  double prev_speedup = 0.0;
  for (index_t delta : {10, 20, 50, 100}) {
    model::SynchronousSchedule sync(n, delta);
    const auto rs = model::run_model(p.a, p.b, p.x0, sync, eo);
    model::DelayedRowsSchedule async(n, {{n / 2, delta}});
    const auto ra = model::run_model(p.a, p.b, p.x0, async, eo);
    ASSERT_TRUE(rs.converged);
    ASSERT_TRUE(ra.converged);
    const double speedup =
        static_cast<double>(rs.steps) / static_cast<double>(ra.steps);
    EXPECT_GT(speedup, prev_speedup * 0.95);  // non-decreasing (noise slack)
    prev_speedup = speedup;
  }
  EXPECT_GT(prev_speedup, 10.0);  // large speedup at large delays
}

// --- Claim (Sec. IV-C): under W.D.D., the residual 1-norm never increases
// no matter which rows are delayed, even for random masks. ---
TEST(PaperClaims, ResidualNeverIncreasesUnderWddForRandomMasks) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(8, 8), 13);
  model::ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 400;
  model::RandomSubsetSchedule sched(p.a.num_rows(), 0.4, 99);
  const auto r = model::run_model(p.a, p.b, p.x0, sched, eo);
  for (std::size_t k = 1; k < r.history.size(); ++k) {
    EXPECT_LE(r.history[k].rel_residual_1,
              r.history[k - 1].rel_residual_1 * (1.0 + 1e-12));
  }
}

// --- Claim (Sec. IV-C): even when one row is delayed until convergence,
// asynchronous Jacobi keeps reducing the residual (toward the deflated
// fixed point). ---
TEST(PaperClaims, PermanentDelayStillReducesResidual) {
  const auto p = gen::make_problem("fd68", gen::paper_fd_68(), 17);
  model::ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 500;
  model::DelayedRowsSchedule sched(p.a.num_rows(), {{34, 0}});
  const auto r = model::run_model(p.a, p.b, p.x0, sched, eo);
  EXPECT_LT(r.final_rel_residual_1, r.history.front().rel_residual_1 * 0.5);
}

// --- Claim (Sec. IV-D / Figs. 6, 9): asynchronous Jacobi can converge
// when synchronous Jacobi does not, and more concurrency helps. ---
TEST(PaperClaims, AsyncConvergesWhereSyncDivergesOnFeMatrix) {
  // Reduced FE mesh with the same spectral character as paper_fe_3081.
  gen::FeMeshOptions fo;
  fo.nx = 40;
  fo.ny = 20;
  fo.jitter = 0.35;
  fo.jitter_fraction = 0.15;
  fo.seed = 20180521;
  const auto p = gen::make_problem("fe", gen::fe_laplacian_2d(fo), 19);
  const double rho = eig::jacobi_spectral_radius_spd(p.a);
  ASSERT_GT(rho, 1.0);  // sync Jacobi must diverge

  // Synchronous: diverges.
  distsim::DistOptions sync_o;
  sync_o.num_processes = 16;
  sync_o.synchronous = true;
  sync_o.max_iterations = 400;
  sync_o.cost = distsim::CostModel::shared_memory_like(p.a.num_rows());
  const auto sys = partition::graph_growing_partition(p.a, 16, 1);
  const auto pa = sys.perm.apply_symmetric(p.a);
  const auto pb = sys.perm.apply(p.b);
  const auto px = sys.perm.apply(p.x0);
  const auto rs = distsim::solve_distributed(pa, pb, px, sys.partition, sync_o);
  EXPECT_GT(rs.final_rel_residual_1, 1e2);

  // Asynchronous with high concurrency relative to cores: converges.
  const index_t procs = 200;
  distsim::DistOptions async_o;
  async_o.num_processes = procs;
  async_o.max_iterations = 800;
  async_o.cost = distsim::CostModel::shared_memory_like(p.a.num_rows());
  async_o.cost.cores = 50;
  const auto sys2 = partition::graph_growing_partition(p.a, procs, 1);
  const auto ra = distsim::solve_distributed(
      sys2.perm.apply_symmetric(p.a), sys2.perm.apply(p.b),
      sys2.perm.apply(p.x0), sys2.partition, async_o);
  EXPECT_LT(ra.final_rel_residual_1, 0.05);
}

// --- Claim (Fig. 2): the fraction of propagated relaxations grows as the
// number of processes grows (fewer rows per process). ---
TEST(PaperClaims, PropagatedFractionGrowsWithConcurrency) {
  const auto p = gen::make_problem("fd272", gen::paper_fd_272(), 7);
  auto fraction_at = [&](index_t procs) {
    const auto sys = partition::graph_growing_partition(p.a, procs, 1);
    distsim::DistOptions o;
    o.num_processes = procs;
    o.max_iterations = 60;
    o.record_trace = true;
    o.cost = distsim::CostModel::shared_memory_like(p.a.num_rows());
    const auto r = distsim::solve_distributed(
        sys.perm.apply_symmetric(p.a), sys.perm.apply(p.b),
        sys.perm.apply(p.x0), sys.partition, o);
    return model::analyze_trace(*r.trace).fraction;
  };
  const double f_low = fraction_at(17);
  const double f_high = fraction_at(272);
  EXPECT_GT(f_high, f_low);
  EXPECT_GT(f_high, 0.9);  // near-complete at one row per process
}

// --- Claim (Fig. 7 character): asynchronous Jacobi converges in fewer
// relaxations than synchronous on the Table-I problems. ---
TEST(PaperClaims, AsyncNeedsFewerRelaxationsOnTable1Analogue) {
  const CsrMatrix a = gen::make_analogue("ecology2", 0.02);
  const auto p = gen::make_problem("ecology2", a, 23);
  const index_t procs = 32;
  const auto sys = partition::graph_growing_partition(p.a, procs, 1);
  const auto pa = sys.perm.apply_symmetric(p.a);
  const auto pb = sys.perm.apply(p.b);
  const auto px = sys.perm.apply(p.x0);

  auto relaxations_to = [&](bool synchronous) {
    distsim::DistOptions o;
    o.num_processes = procs;
    o.synchronous = synchronous;
    o.max_iterations = 4000;
    o.tolerance = 0.05;
    const auto r = distsim::solve_distributed(pa, pb, px, sys.partition, o);
    EXPECT_TRUE(r.reached_tolerance);
    return r.total_relaxations;
  };
  const index_t sync_relax = relaxations_to(true);
  const index_t async_relax = relaxations_to(false);
  // The paper's observation: async tends to need fewer (or comparable)
  // relaxations; give 20% slack for stochastic effects.
  EXPECT_LT(static_cast<double>(async_relax),
            1.2 * static_cast<double>(sync_relax));
}

// --- Claim (Fig. 1): the two worked examples behave exactly as derived. ---
TEST(PaperClaims, Figure1ExamplesMatchPaper) {
  EXPECT_DOUBLE_EQ(model::analyze_trace(model::figure1a_trace()).fraction, 1.0);
  EXPECT_DOUBLE_EQ(model::analyze_trace(model::figure1b_trace()).fraction,
                   0.75);
}

}  // namespace
}  // namespace ajac
