// Property-based sweeps of the paper's theory over randomized inputs:
// Theorem 1 and residual monotonicity must hold for EVERY W.D.D. matrix
// and EVERY mask sequence, not just the structured examples.

#include <gtest/gtest.h>

#include "ajac/core/ajac.hpp"
#include "ajac/gen/analogues.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/model/bounds.hpp"
#include "ajac/model/theory.hpp"
#include "ajac/sparse/scaling.hpp"
#include "ajac/sparse/submatrix.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"

namespace ajac {
namespace {

class RandomWddSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWddSweep, Theorem1HoldsForRandomMatricesAndMasks) {
  // NOTE: Theorem 1 needs W.D.D. of the matrix the relaxation actually
  // uses. The *symmetric* unit-diagonal scaling D^{-1/2} A D^{-1/2} does
  // not preserve W.D.D. when diagonals vary (a small neighbor diagonal
  // inflates the scaled off-diagonal), so the check runs on the raw
  // matrix — check_theorem1 applies D^{-1} internally, which preserves
  // row dominance exactly.
  Rng rng(GetParam());
  const CsrMatrix a = gen::random_wdd_matrix(24, 30, rng);
  const index_t n = a.num_rows();
  for (int trial = 0; trial < 4; ++trial) {
    // Random non-trivial delayed set.
    std::vector<index_t> delayed;
    for (index_t i = 0; i < n; ++i) {
      if (rng.uniform() < 0.3) delayed.push_back(i);
    }
    if (delayed.empty()) delayed.push_back(0);
    if (static_cast<index_t>(delayed.size()) == n) delayed.pop_back();
    const auto active =
        model::ActiveSet::from_indices(n, complement_rows(n, delayed));
    const auto chk = model::check_theorem1(a, active);
    ASSERT_TRUE(chk.has_delayed_row);
    EXPECT_NEAR(chk.g_norm_inf, 1.0, 1e-11);
    EXPECT_NEAR(chk.h_norm_1, 1.0, 1e-11);
    EXPECT_NEAR(chk.h_unit_eigvec_residual, 0.0, 1e-12);
    EXPECT_NEAR(chk.g_unit_eigvec_residual, 0.0, 1e-8);
  }
}

TEST_P(RandomWddSweep, ResidualMonotoneUnderRandomMasks) {
  // Same caveat as above: monotonicity is a W.D.D. property, so iterate
  // the raw matrix (the executor divides by the diagonal itself).
  Rng rng(GetParam());
  const CsrMatrix a = gen::random_wdd_matrix(40, 60, rng);
  Vector b(static_cast<std::size_t>(a.num_rows()));
  Vector x0(b.size());
  vec::fill_uniform(b, rng);
  vec::fill_uniform(x0, rng);
  model::ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 150;
  model::RandomSubsetSchedule sched(a.num_rows(), 0.5,
                                    GetParam() ^ 0xabcdULL);
  const auto r = model::run_model(a, b, x0, sched, eo);
  for (std::size_t k = 1; k < r.history.size(); ++k) {
    ASSERT_LE(r.history[k].rel_residual_1,
              r.history[k - 1].rel_residual_1 * (1.0 + 1e-12));
  }
}

TEST_P(RandomWddSweep, ChazanMirankerCertifiesAndAsyncConverges) {
  Rng rng(GetParam());
  const CsrMatrix raw = gen::random_wdd_matrix(48, 80, rng);
  const auto cert = model::chazan_miranker(raw);
  ASSERT_TRUE(cert.async_convergent_for_all_schedules);

  const auto p = gen::make_problem("rand", raw, GetParam());
  SolveConfig cfg;
  cfg.backend = Backend::kDistributedSim;
  cfg.parallelism = 8;
  cfg.tolerance = 1e-6;
  cfg.max_iterations = 1000000;
  cfg.seed = GetParam();
  const Solution sol = solve(p.a, p.b, p.x0, cfg);
  EXPECT_TRUE(sol.converged);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWddSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

class AnalogueSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AnalogueSweep, DistributedSyncEqualsSequentialOnAnalogue) {
  const CsrMatrix a = gen::make_analogue(GetParam(), 0.01);
  const auto p = gen::make_problem(GetParam(), a, 5);
  distsim::DistOptions o;
  o.num_processes = 6;
  o.synchronous = true;
  o.max_iterations = 15;
  const auto part = partition::contiguous_partition(p.a.num_rows(), 6);
  const auto r = distsim::solve_distributed(p.a, p.b, p.x0, part, o);
  solvers::SolveOptions so;
  so.tolerance = 0.0;
  so.max_iterations = 15;
  const auto ref = solvers::jacobi(p.a, p.b, p.x0, so);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(r.x, ref.x), 0.0);
}

TEST_P(AnalogueSweep, AsyncBackendConvergesWhereJacobiDoes) {
  const auto& catalogue = gen::table1_catalogue();
  const auto it =
      std::find_if(catalogue.begin(), catalogue.end(),
                   [&](const auto& info) { return info.name == GetParam(); });
  ASSERT_NE(it, catalogue.end());
  if (!it->jacobi_converges) GTEST_SKIP() << "Jacobi-divergent analogue";

  const CsrMatrix a = gen::make_analogue(GetParam(), 0.01);
  const auto p = gen::make_problem(GetParam(), a, 7);
  SolveConfig cfg;
  cfg.backend = Backend::kDistributedSim;
  cfg.parallelism = 12;
  cfg.tolerance = 1e-4;
  cfg.max_iterations = 1000000;
  const Solution sol = solve(p.a, p.b, p.x0, cfg);
  EXPECT_TRUE(sol.converged) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Table1, AnalogueSweep,
                         ::testing::Values("thermal2", "G3_circuit",
                                           "ecology2", "apache2",
                                           "parabolic_fem", "thermomech_dm",
                                           "Dubcova2"));

}  // namespace
}  // namespace ajac
