#include "ajac/core/ajac.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"

namespace ajac {
namespace {

TEST(Api, VersionIsNonEmpty) {
  EXPECT_NE(std::string(version()), "");
}

class AllBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(AllBackends, SolvesFdSystemToTolerance) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(10, 10), 3);
  SolveConfig cfg;
  cfg.backend = GetParam();
  cfg.parallelism = 4;
  cfg.tolerance = 1e-6;
  cfg.max_iterations = 200000;
  const Solution sol = solve(p.a, p.b, p.x0, cfg);
  EXPECT_TRUE(sol.converged);
  // Verify with an independent residual.
  Vector r(p.b.size());
  p.a.residual(sol.x, p.b, r);
  Vector r0(p.b.size());
  p.a.residual(p.x0, p.b, r0);
  EXPECT_LE(vec::norm1(r) / vec::norm1(r0), 2e-6);
}

INSTANTIATE_TEST_SUITE_P(Backends, AllBackends,
                         ::testing::Values(Backend::kSequential,
                                           Backend::kModel,
                                           Backend::kSharedMemory,
                                           Backend::kDistributedSim));

TEST(Api, SolveSpdMapsSolutionBack) {
  // Raw (unscaled) SPD system: solve_spd must return x with A x ~= b.
  const CsrMatrix a = gen::fd_laplacian_2d(8, 8);
  Rng rng(5);
  Vector x_true(static_cast<std::size_t>(a.num_rows()));
  vec::fill_uniform(x_true, rng);
  Vector b(x_true.size());
  a.spmv(x_true, b);

  SolveConfig cfg;
  cfg.backend = Backend::kSequential;
  cfg.tolerance = 1e-10;
  cfg.max_iterations = 200000;
  const Solution sol = solve_spd(a, b, cfg);
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(vec::max_abs_diff(sol.x, x_true), 0.0, 1e-6);
}

TEST(Api, DistributedBackendWithPartitioningMapsBack) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(12, 12), 7);
  SolveConfig cfg;
  cfg.backend = Backend::kDistributedSim;
  cfg.parallelism = 9;
  cfg.tolerance = 1e-6;
  cfg.max_iterations = 100000;
  cfg.partition_first = true;
  const Solution sol = solve(p.a, p.b, p.x0, cfg);
  ASSERT_TRUE(sol.converged);
  Vector r(p.b.size());
  p.a.residual(sol.x, p.b, r);
  Vector r0(p.b.size());
  p.a.residual(p.x0, p.b, r0);
  EXPECT_LE(vec::norm1(r) / vec::norm1(r0), 2e-6);
}

TEST(Api, SynchronousFlagSwitchesAlgorithm) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(8, 8), 9);
  SolveConfig cfg;
  cfg.backend = Backend::kDistributedSim;
  cfg.parallelism = 4;
  cfg.synchronous = true;
  cfg.tolerance = 1e-5;
  cfg.max_iterations = 100000;
  const Solution sync_sol = solve(p.a, p.b, p.x0, cfg);
  EXPECT_TRUE(sync_sol.converged);
}

TEST(Api, ReportsRelaxationCounts) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(6, 6), 11);
  SolveConfig cfg;
  cfg.backend = Backend::kSequential;
  cfg.tolerance = 0.0;
  cfg.max_iterations = 10;
  const Solution sol = solve(p.a, p.b, p.x0, cfg);
  EXPECT_EQ(sol.iterations, 10);
  EXPECT_EQ(sol.relaxations, 10 * p.a.num_rows());
}

}  // namespace
}  // namespace ajac
