// Determinism and fault-interaction contract for the sampled row policies:
// a (seed, policy) pair pins the entire schedule, fault logs replay bitwise
// run to run, the policy stream never perturbs iteration-keyed fault
// decisions, recorded distsim traces replay through the Φ(l) model
// identically, and a k = 1 batch draws the same rows as the scalar solver.
// Everything here runs under the tsan preset too (filter: ^...|Policy...),
// where a racy sampler would trip the data-race detector.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/runtime/row_policy.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/multi_vector.hpp"
#include "test_helpers.hpp"

namespace ajac::runtime {
namespace {

using ajac::testing::test_seed;

SharedOptions base_async(RowPolicy policy) {
  SharedOptions o;
  o.num_threads = 2;
  o.tolerance = 0.0;  // park at the cap: iteration counts are pinned
  o.max_iterations = 24;
  o.record_history = false;
  o.yield = true;
  o.final_polish = false;
  o.policy = policy;
  o.policy_seed = test_seed(11);
  o.weight_refresh = 2;
  return o;
}

void expect_same_fault_log(const std::vector<fault::FaultEvent>& a,
                           const std::vector<fault::FaultEvent>& b,
                           const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_TRUE(a[k] == b[k]) << what << ": event " << k << " differs";
  }
}

TEST(PolicyDeterminism, SameSeedSamePolicySameFaultLog) {
  // Full fault menu (straggler, stale window, bit flips, crash) plus a
  // sampled policy: two runs of the same configuration must produce
  // element-wise identical fault logs. Bit flips are keyed on the relaxed
  // row, so this also proves the drawn schedule itself is replayed.
  //
  // The uniform schedule is a pure function of the seed, so it replays
  // bitwise at any thread count. The weighted schedule additionally
  // depends on the *published residual snapshots*, which at >= 2 threads
  // reflect racy cross-thread reads (racy-ok(weight-snapshot)) — only the
  // single-threaded run is value-deterministic, so that is what gets the
  // bitwise contract.
  const auto p =
      gen::make_problem("fd", gen::fd_laplacian_2d(12, 12), test_seed(1));
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = test_seed(2);
  plan->stragglers.push_back(
      {.actor = 0, .extra_delay_us = 1.0, .period = 8, .duty = 0.5});
  plan->stale_reads.push_back({.actor = -1, .period = 8, .duty = 0.5});
  plan->bit_flips.push_back({.actor = -1, .probability = 5e-3, .bit = 16});
  plan->crashes.push_back({.actor = 1,
                           .crash_iteration = 6,
                           .dead_seconds = 1e-4,
                           .reset_state_on_recovery = true});

  auto plan1 = std::make_shared<fault::FaultPlan>();
  plan1->seed = test_seed(2);
  plan1->stragglers.push_back(
      {.actor = 0, .extra_delay_us = 1.0, .period = 8, .duty = 0.5});
  plan1->stale_reads.push_back({.actor = -1, .period = 8, .duty = 0.5});
  plan1->bit_flips.push_back({.actor = -1, .probability = 5e-3, .bit = 16});
  plan1->crashes.push_back({.actor = 0,
                            .crash_iteration = 6,
                            .dead_seconds = 1e-4,
                            .reset_state_on_recovery = true});

  for (const RowPolicy policy :
       {RowPolicy::kUniformRandom, RowPolicy::kResidualWeighted}) {
    SharedOptions o = base_async(policy);
    if (policy == RowPolicy::kResidualWeighted) {
      o.num_threads = 1;
      o.fault_plan = plan1;
    } else {
      o.fault_plan = plan;
    }
    const SharedResult r1 = solve_shared(p.a, p.b, p.x0, o);
    const SharedResult r2 = solve_shared(p.a, p.b, p.x0, o);
    ASSERT_FALSE(r1.fault_events.empty());
    expect_same_fault_log(r1.fault_events, r2.fault_events,
                          std::string("policy ") + policy_name(policy));
  }
}

TEST(PolicyDeterminism, PolicyStreamDoesNotPerturbIterationKeyedFaults) {
  // Straggler / stale-window / crash decisions are keyed on the local
  // iteration counter alone, and with tolerance 0 every thread parks at
  // max_iterations — so swapping the row policy (which changes *what* each
  // iteration relaxes, not *how many* iterations run) must leave the fault
  // log bitwise unchanged. Bit flips are deliberately absent: they key on
  // the relaxed row and legitimately differ across policies.
  const auto p =
      gen::make_problem("fd", gen::fd_laplacian_2d(12, 12), test_seed(3));
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = test_seed(4);
  plan->stragglers.push_back(
      {.actor = 1, .extra_delay_us = 1.0, .period = 6, .duty = 0.5});
  plan->stale_reads.push_back({.actor = -1, .period = 10, .duty = 0.3});
  plan->crashes.push_back({.actor = 0,
                           .crash_iteration = 9,
                           .dead_seconds = 1e-4,
                           .reset_state_on_recovery = false});

  std::vector<std::vector<fault::FaultEvent>> logs;
  for (const RowPolicy policy :
       {RowPolicy::kNaturalOrder, RowPolicy::kUniformRandom,
        RowPolicy::kResidualWeighted}) {
    SharedOptions o = base_async(policy);
    o.fault_plan = plan;
    logs.push_back(solve_shared(p.a, p.b, p.x0, o).fault_events);
  }
  ASSERT_FALSE(logs[0].empty());
  expect_same_fault_log(logs[0], logs[1], "natural vs uniform");
  expect_same_fault_log(logs[0], logs[2], "natural vs weighted");
}

TEST(PolicyDeterminism, DistsimTraceReplaysSeedDeterministically) {
  // A recorded sampled-policy trace is a complete account of the run: the
  // same seed records the same trace twice, and replaying it through the
  // model executor reconstructs the same residual history both times.
  const auto p =
      gen::make_problem("fd", gen::fd_laplacian_2d(12, 12), test_seed(5));
  const auto part = partition::contiguous_partition(p.a.num_rows(), 4);
  for (const RowPolicy policy :
       {RowPolicy::kUniformRandom, RowPolicy::kResidualWeighted}) {
    SCOPED_TRACE(policy_name(policy));
    distsim::DistOptions o;
    o.num_processes = 4;
    o.max_iterations = 8;
    o.tolerance = 0.0;
    o.seed = test_seed(6);
    o.record_trace = true;
    o.policy = policy;
    o.weight_refresh = 2;
    const auto r1 = distsim::solve_distributed(p.a, p.b, p.x0, part, o);
    const auto r2 = distsim::solve_distributed(p.a, p.b, p.x0, part, o);
    ASSERT_TRUE(r1.trace.has_value());
    ASSERT_TRUE(r2.trace.has_value());
    EXPECT_EQ(model::to_json(*r1.trace), model::to_json(*r2.trace));

    model::ExecutorOptions eo;
    eo.tolerance = 0.0;
    const auto replay1 = model::replay_trace(p.a, p.b, p.x0, *r1.trace, eo);
    const auto replay2 = model::replay_trace(p.a, p.b, p.x0, *r2.trace, eo);
    ASSERT_EQ(replay1.result.history.size(), replay2.result.history.size());
    ASSERT_FALSE(replay1.result.history.empty());
    for (std::size_t k = 0; k < replay1.result.history.size(); ++k) {
      EXPECT_EQ(replay1.result.history[k].rel_residual_1,
                replay2.result.history[k].rel_residual_1)
          << "history point " << k;
    }
  }
}

TEST(PolicyDeterminism, BatchK1MatchesScalarDraws) {
  // The batch solver reuses the scalar (seed, worker, iter, slot) draw
  // coordinates, so a k = 1 batch must walk the same sampled schedule and
  // land on the bitwise-identical solution for both kernels.
  const auto p =
      gen::make_problem("fd", gen::fd_laplacian_2d(10, 10), test_seed(7));
  const MultiVector b1 = MultiVector::broadcast(p.b, 1);
  const MultiVector x1 = MultiVector::broadcast(p.x0, 1);
  for (const RowPolicy policy :
       {RowPolicy::kUniformRandom, RowPolicy::kResidualWeighted}) {
    for (const KernelKind kernel :
         {KernelKind::kBlocked, KernelKind::kReference}) {
      SCOPED_TRACE(std::string(policy_name(policy)) + " kernel " +
                   std::to_string(static_cast<int>(kernel)));
      SharedOptions o = base_async(policy);
      o.num_threads = 1;  // single worker: async run is deterministic
      o.max_iterations = 30;
      o.kernel = kernel;
      const SharedResult scalar = solve_shared(p.a, p.b, p.x0, o);
      const SharedBatchResult batch = solve_shared_batch(p.a, b1, x1, o);
      ASSERT_EQ(batch.x.num_cols(), 1);
      ASSERT_EQ(static_cast<std::size_t>(batch.x.num_rows()),
                scalar.x.size());
      for (index_t i = 0; i < batch.x.num_rows(); ++i) {
        ASSERT_EQ(batch.x(i, 0), scalar.x[static_cast<std::size_t>(i)])
            << "row " << i;
      }
      EXPECT_EQ(batch.total_relaxations, scalar.total_relaxations);
    }
  }
}

TEST(PolicyDeterminism, SampledPoliciesConvergeMultiThread) {
  const auto p =
      gen::make_problem("fd", gen::fd_laplacian_2d(12, 12), test_seed(8));
  for (const RowPolicy policy :
       {RowPolicy::kUniformRandom, RowPolicy::kResidualWeighted}) {
    SCOPED_TRACE(policy_name(policy));
    SharedOptions o;
    o.num_threads = 4;
    o.tolerance = 1e-8;
    o.max_iterations = 200000;
    o.record_history = false;
    o.yield = true;
    o.policy = policy;
    o.policy_seed = test_seed(9);
    o.weight_refresh = 2;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, o);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.final_rel_residual_1, 1e-8);
  }
}

TEST(PolicyDeterminism, DistsimSampledConfigChecks) {
  const auto p =
      gen::make_problem("fd", gen::fd_laplacian_2d(8, 8), test_seed(10));
  const auto part = partition::contiguous_partition(p.a.num_rows(), 2);
  distsim::DistOptions o;
  o.num_processes = 2;
  o.max_iterations = 4;
  o.policy = RowPolicy::kUniformRandom;

  distsim::DistOptions sync = o;
  sync.synchronous = true;
  EXPECT_THROW(distsim::solve_distributed(p.a, p.b, p.x0, part, sync),
               std::logic_error);

  distsim::DistOptions gs = o;
  gs.inner_sweep = distsim::InnerSweep::kGaussSeidel;
  EXPECT_THROW(distsim::solve_distributed(p.a, p.b, p.x0, part, gs),
               std::logic_error);

  distsim::DistOptions bad = o;
  bad.policy = RowPolicy::kResidualWeighted;
  bad.weight_refresh = 0;
  EXPECT_THROW(distsim::solve_distributed(p.a, p.b, p.x0, part, bad),
               std::logic_error);
}

}  // namespace
}  // namespace ajac::runtime
