// Differential kernel-equivalence suite: the partition-aware blocked
// kernels (KernelKind::kBlocked, the default) against the reference
// unsplit path (KernelKind::kReference, the paper's scheme verbatim).
//
// Whenever both kernels read the same vector state — num_threads = 1,
// where the async solve is deterministic lockstep, and synchronous mode,
// where the barrier freezes x for the whole of step 1 — the two must
// produce bitwise identical results: BlockedCsr preserves each row's CSR
// entry order, so per-row accumulation is the same sequence of fused
// multiply-free operations, and the commit evaluates the same expression.
// Comparisons below are on the raw bit patterns, not on values, so a
// -0.0/+0.0 or NaN discrepancy would also fail.

#include "ajac/runtime/shared_jacobi.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/obs/metrics.hpp"
#include "ajac/sparse/csr.hpp"
#include "test_helpers.hpp"

namespace ajac::runtime {
namespace {

struct NamedMatrix {
  const char* name;
  CsrMatrix a;
};

/// The three matrix families the paper's shared-memory experiments use:
/// FD 5-point and 7-point stencils plus the (not weakly diagonally
/// dominant) unstructured FE matrix, at sizes small enough to sweep many
/// configurations.
std::vector<NamedMatrix> test_matrices() {
  std::vector<NamedMatrix> out;
  out.push_back({"fd5pt_12x12", gen::fd_laplacian_2d(12, 12)});
  out.push_back({"fd7pt_5x5x5", gen::fd_laplacian_3d(5, 5, 5)});
  gen::FeMeshOptions fe;
  fe.nx = 8;
  fe.ny = 8;
  out.push_back({"fe_8x8", gen::fe_laplacian_2d(fe)});
  return out;
}

void expect_bitwise_equal(const Vector& blocked, const Vector& reference) {
  ASSERT_EQ(blocked.size(), reference.size());
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(blocked[i]),
              std::bit_cast<std::uint64_t>(reference[i]))
        << "bit pattern diverged at row " << i << ": " << blocked[i]
        << " vs " << reference[i];
  }
}

/// Run the same problem through both kernels and require identical results
/// down to the bit patterns and the bookkeeping.
void expect_kernels_agree(const gen::LinearProblem& p, SharedOptions opts) {
  opts.kernel = KernelKind::kBlocked;
  const SharedResult blocked = solve_shared(p.a, p.b, p.x0, opts);
  opts.kernel = KernelKind::kReference;
  const SharedResult reference = solve_shared(p.a, p.b, p.x0, opts);

  expect_bitwise_equal(blocked.x, reference.x);
  EXPECT_EQ(blocked.converged, reference.converged);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(blocked.final_rel_residual_1),
            std::bit_cast<std::uint64_t>(reference.final_rel_residual_1));
  EXPECT_EQ(blocked.iterations_per_thread, reference.iterations_per_thread);
  EXPECT_EQ(blocked.total_relaxations, reference.total_relaxations);
  EXPECT_EQ(blocked.polish_sweeps, reference.polish_sweeps);
}

TEST(KernelEquiv, SingleThreadBitwiseIdentical) {
  for (auto& [name, a] : test_matrices()) {
    SCOPED_TRACE(name);
    const auto p =
        gen::make_problem(name, std::move(a), ajac::testing::test_seed(71));
    SharedOptions opts;
    opts.num_threads = 1;
    opts.tolerance = 1e-8;
    opts.max_iterations = 40000;
    opts.record_history = false;
    expect_kernels_agree(p, opts);
  }
}

TEST(KernelEquiv, SingleThreadGaussSeidelBitwiseIdentical) {
  for (auto& [name, a] : test_matrices()) {
    SCOPED_TRACE(name);
    const auto p =
        gen::make_problem(name, std::move(a), ajac::testing::test_seed(73));
    SharedOptions opts;
    opts.num_threads = 1;
    opts.tolerance = 1e-8;
    opts.max_iterations = 40000;
    opts.record_history = false;
    opts.local_gauss_seidel = true;
    expect_kernels_agree(p, opts);
  }
}

TEST(KernelEquiv, SingleThreadFixedIterationsBitwiseIdentical) {
  // Pure iteration-count runs (tolerance 0) avoid any residual-check
  // interaction: the comparison is exactly N lockstep sweeps.
  for (auto& [name, a] : test_matrices()) {
    SCOPED_TRACE(name);
    const auto p =
        gen::make_problem(name, std::move(a), ajac::testing::test_seed(75));
    for (const index_t iters : {1, 2, 5, 17, 64}) {
      SCOPED_TRACE(::testing::Message() << "iterations " << iters);
      SharedOptions opts;
      opts.num_threads = 1;
      opts.tolerance = 0.0;
      opts.max_iterations = iters;
      opts.record_history = false;
      expect_kernels_agree(p, opts);
    }
  }
}

TEST(KernelEquiv, SingleThreadTracedRunsMatchPerRow) {
  // Traced mode: solutions must stay bitwise identical and every row's
  // sequence of (source_row, version) reads must match. The blocked path
  // interleaves rows interior-first, so cross-row event order is allowed
  // to differ (the trace contract only orders events of the same row).
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(9, 9),
                                   ajac::testing::test_seed(77));
  SharedOptions opts;
  opts.num_threads = 1;
  opts.tolerance = 0.0;
  opts.max_iterations = 12;
  opts.record_history = false;
  opts.record_trace = true;

  opts.kernel = KernelKind::kBlocked;
  const SharedResult blocked = solve_shared(p.a, p.b, p.x0, opts);
  opts.kernel = KernelKind::kReference;
  const SharedResult reference = solve_shared(p.a, p.b, p.x0, opts);

  expect_bitwise_equal(blocked.x, reference.x);
  ASSERT_TRUE(blocked.trace.has_value());
  ASSERT_TRUE(reference.trace.has_value());
  ASSERT_EQ(blocked.trace->events().size(), reference.trace->events().size());

  using PerRow = std::map<index_t, std::vector<model::RelaxationRead>>;
  const auto by_row = [](const model::RelaxationTrace& t) {
    PerRow rows;
    for (const auto& e : t.events()) {
      auto& seq = rows[e.row];
      seq.insert(seq.end(), e.reads.begin(), e.reads.end());
    }
    return rows;
  };
  const PerRow blocked_rows = by_row(*blocked.trace);
  const PerRow reference_rows = by_row(*reference.trace);
  ASSERT_EQ(blocked_rows.size(), reference_rows.size());
  for (const auto& [row, reads] : reference_rows) {
    const auto it = blocked_rows.find(row);
    ASSERT_NE(it, blocked_rows.end()) << "row " << row << " missing";
    ASSERT_EQ(it->second.size(), reads.size()) << "row " << row;
    for (std::size_t k = 0; k < reads.size(); ++k) {
      EXPECT_EQ(it->second[k].source_row, reads[k].source_row)
          << "row " << row << " read " << k;
      EXPECT_EQ(it->second[k].version, reads[k].version)
          << "row " << row << " read " << k;
    }
  }
}

TEST(KernelEquiv, MultiThreadSynchronousZeroUlp) {
  // With barriers, x is frozen during step 1 for every thread, so blocked
  // and reference kernels read identical values at every iteration — the
  // whole run must agree to 0 ULP regardless of thread count.
  for (auto& [name, a] : test_matrices()) {
    SCOPED_TRACE(name);
    const auto p =
        gen::make_problem(name, std::move(a), ajac::testing::test_seed(79));
    for (const index_t threads : {2, 3, 4}) {
      for (const index_t iters : {1, 7, 40}) {
        SCOPED_TRACE(::testing::Message()
                     << threads << " threads, " << iters << " iterations");
        SharedOptions opts;
        opts.num_threads = threads;
        opts.synchronous = true;
        opts.tolerance = 0.0;
        opts.max_iterations = iters;
        opts.record_history = false;
        expect_kernels_agree(p, opts);
      }
    }
  }
}

TEST(KernelEquiv, SingleThreadFaultPathsBitwiseIdentical) {
  // Bit flips and a crash-with-state-reset at one thread: decisions are
  // pure FaultClock hashes of logical coordinates, and the blocked layout
  // preserves entry indexing within rows, so the same entries get the same
  // corruption and the mirror resyncs after the reset — runs must match
  // bitwise including the injected-event logs.
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(10, 10),
                                   ajac::testing::test_seed(81));
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = ajac::testing::test_seed(83);
  plan->bit_flips.push_back({.actor = -1, .probability = 0.02, .bit = 12});
  plan->crashes.push_back({.actor = 0,
                           .crash_iteration = 6,
                           .dead_seconds = 1e-6,
                           .reset_state_on_recovery = true});
  plan->stale_reads.push_back({.actor = -1, .period = 8, .duty = 0.5});

  SharedOptions opts;
  opts.num_threads = 1;
  opts.tolerance = 0.0;
  opts.max_iterations = 60;
  opts.record_history = false;
  opts.fault_plan = plan;

  opts.kernel = KernelKind::kBlocked;
  const SharedResult blocked = solve_shared(p.a, p.b, p.x0, opts);
  opts.kernel = KernelKind::kReference;
  const SharedResult reference = solve_shared(p.a, p.b, p.x0, opts);

  expect_bitwise_equal(blocked.x, reference.x);
  ASSERT_EQ(blocked.fault_events.size(), reference.fault_events.size());
  for (std::size_t k = 0; k < blocked.fault_events.size(); ++k) {
    EXPECT_EQ(blocked.fault_events[k], reference.fault_events[k])
        << "fault log diverged at event " << k;
  }
  EXPECT_FALSE(blocked.fault_events.empty());
}

TEST(KernelEquiv, MetricsRegistryDoesNotPerturbBlockedResults) {
  // Same contract the reference path already guarantees: attaching a
  // registry must not change a single bit of the blocked solve.
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(10, 10),
                                   ajac::testing::test_seed(85));
  SharedOptions opts;
  opts.num_threads = 1;
  opts.tolerance = 1e-8;
  opts.max_iterations = 40000;
  opts.record_history = false;
  opts.kernel = KernelKind::kBlocked;
  const SharedResult plain = solve_shared(p.a, p.b, p.x0, opts);

  obs::MetricsRegistry reg;
  opts.metrics = &reg;
  const SharedResult instrumented = solve_shared(p.a, p.b, p.x0, opts);

  expect_bitwise_equal(instrumented.x, plain.x);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto local =
      snap.totals[static_cast<std::size_t>(obs::Counter::kLocalReads)];
  const auto ghost =
      snap.totals[static_cast<std::size_t>(obs::Counter::kGhostReads)];
  // One thread owns every row: all entries resolve from the mirror.
  EXPECT_GT(local, 0U);
  EXPECT_EQ(ghost, 0U);
  EXPECT_EQ(local + ghost,
            static_cast<std::uint64_t>(p.a.num_nonzeros()) *
                snap.totals[static_cast<std::size_t>(obs::Counter::kIterations)]);
}

/// Run the same problem through kSellCS and kBlocked and require bitwise
/// agreement — the contract of the bandwidth-engineered data plane with
/// fp64 ghosts whenever the reads see the same values (one thread, or
/// synchronous mode): the SELL slice accumulation consumes each row's
/// entries in CSR order and the once-per-iteration ghost refresh reads
/// exactly what the per-entry blocked reads would.
void expect_sellcs_matches_blocked(const gen::LinearProblem& p,
                                   SharedOptions opts) {
  opts.kernel = KernelKind::kSellCS;
  const SharedResult sell = solve_shared(p.a, p.b, p.x0, opts);
  opts.kernel = KernelKind::kBlocked;
  const SharedResult blocked = solve_shared(p.a, p.b, p.x0, opts);

  expect_bitwise_equal(sell.x, blocked.x);
  EXPECT_EQ(sell.converged, blocked.converged);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(sell.final_rel_residual_1),
            std::bit_cast<std::uint64_t>(blocked.final_rel_residual_1));
  EXPECT_EQ(sell.iterations_per_thread, blocked.iterations_per_thread);
  EXPECT_EQ(sell.total_relaxations, blocked.total_relaxations);
  EXPECT_EQ(sell.polish_sweeps, blocked.polish_sweeps);
}

TEST(KernelEquiv, SellCSSingleThreadBitwiseIdentical) {
  for (auto& [name, a] : test_matrices()) {
    SCOPED_TRACE(name);
    const auto p =
        gen::make_problem(name, std::move(a), ajac::testing::test_seed(87));
    SharedOptions opts;
    opts.num_threads = 1;
    opts.tolerance = 1e-8;
    opts.max_iterations = 40000;
    opts.record_history = false;
    expect_sellcs_matches_blocked(p, opts);
  }
}

TEST(KernelEquiv, SellCSSingleThreadFixedIterationsBitwiseIdentical) {
  for (auto& [name, a] : test_matrices()) {
    SCOPED_TRACE(name);
    const auto p =
        gen::make_problem(name, std::move(a), ajac::testing::test_seed(89));
    for (const index_t iters : {1, 2, 5, 17, 64}) {
      SCOPED_TRACE(::testing::Message() << "iterations " << iters);
      SharedOptions opts;
      opts.num_threads = 1;
      opts.tolerance = 0.0;
      opts.max_iterations = iters;
      opts.record_history = false;
      expect_sellcs_matches_blocked(p, opts);
    }
  }
}

TEST(KernelEquiv, SellCSMultiThreadSynchronousZeroUlp) {
  // With barriers the commits of iteration k all complete before any
  // thread's iteration k+1 ghost refresh, so the dense buffer holds
  // exactly the frozen x the blocked per-entry reads would see — the runs
  // must agree to 0 ULP at any thread count, SELL row reordering included.
  for (auto& [name, a] : test_matrices()) {
    SCOPED_TRACE(name);
    const auto p =
        gen::make_problem(name, std::move(a), ajac::testing::test_seed(91));
    for (const index_t threads : {2, 3, 4}) {
      for (const index_t iters : {1, 7, 40}) {
        SCOPED_TRACE(::testing::Message()
                     << threads << " threads, " << iters << " iterations");
        SharedOptions opts;
        opts.num_threads = threads;
        opts.synchronous = true;
        opts.tolerance = 0.0;
        opts.max_iterations = iters;
        opts.record_history = false;
        expect_sellcs_matches_blocked(p, opts);
      }
    }
  }
}

TEST(KernelEquiv, SellCSNnzPartitionSynchronousZeroUlp) {
  // Same contract on nnz-balanced blocks (the facade's default for the
  // partition-aware kernels): unequal block sizes change which rows are
  // interior vs boundary, not any row's accumulation order.
  for (auto& [name, a] : test_matrices()) {
    SCOPED_TRACE(name);
    const auto p =
        gen::make_problem(name, std::move(a), ajac::testing::test_seed(93));
    SharedOptions opts;
    opts.num_threads = 3;
    opts.synchronous = true;
    opts.tolerance = 0.0;
    opts.max_iterations = 25;
    opts.record_history = false;
    opts.partition = partition::nnz_balanced_partition(p.a, opts.num_threads);
    expect_sellcs_matches_blocked(p, opts);
  }
}

TEST(KernelEquiv, SellCSFp32GhostsConvergeWithFp64Termination) {
  // fp32 ghost publication perturbs only what neighbours read — the
  // verified stop recomputes a fresh fp64 residual from the authoritative
  // x, so a converged=true result certifies the fp64 tolerance exactly as
  // on the other kernels. The rounding does put a floor under the
  // achievable residual (boundary rows re-read fp32-rounded neighbours
  // every sweep, so the iterate stalls around eps_fp32 ~ 6e-8 relative);
  // the tolerance here sits safely above that floor. Asynchronous
  // multi-thread runs, several seeds.
  for (const int salt : {95, 97, 99}) {
    SCOPED_TRACE(::testing::Message() << "salt " << salt);
    const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(24, 24),
                                     ajac::testing::test_seed(salt));
    SharedOptions opts;
    opts.num_threads = 4;
    opts.tolerance = 1e-5;
    opts.max_iterations = 200000;
    opts.record_history = false;
    opts.yield = true;
    opts.kernel = KernelKind::kSellCS;
    opts.ghost_precision = GhostPrecision::kFp32;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.final_rel_residual_1, opts.tolerance);
  }
}

TEST(KernelEquiv, SellCSMetricsCountGhostRefreshes) {
  // The registry must not perturb the solve, and the kSellCS-specific
  // counter must tally exactly one buffer refresh per local iteration.
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(10, 10),
                                   ajac::testing::test_seed(101));
  SharedOptions opts;
  opts.num_threads = 1;
  opts.tolerance = 0.0;
  opts.max_iterations = 30;
  opts.record_history = false;
  opts.kernel = KernelKind::kSellCS;
  const SharedResult plain = solve_shared(p.a, p.b, p.x0, opts);

  obs::MetricsRegistry reg;
  opts.metrics = &reg;
  const SharedResult instrumented = solve_shared(p.a, p.b, p.x0, opts);

  expect_bitwise_equal(instrumented.x, plain.x);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(
      snap.totals[static_cast<std::size_t>(obs::Counter::kGhostRefreshes)],
      snap.totals[static_cast<std::size_t>(obs::Counter::kIterations)]);
}

}  // namespace
}  // namespace ajac::runtime
