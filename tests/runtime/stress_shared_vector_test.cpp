// Concurrency stress harness for SharedVector (designed to run under
// ThreadSanitizer: `cmake --preset tsan && ctest --preset tsan`).
//
// The seqlock's correctness claim is that read_versioned never pairs a
// value with the wrong version, even while the single writer of that
// element is mid-write. The harness makes the claim checkable by encoding
// the (element, version) identity into every written value: writer of
// element i stores encode(i, k) for version k, so any torn read — a value
// from one write paired with the sequence number of another — decodes to
// a mismatch and fails loudly. Randomized yields shake the interleavings;
// on oversubscribed machines the bounded-spin retry path (writer
// descheduled mid-write, sequence number odd) is exercised constantly.
//
// Intensity is tunable via AJAC_STRESS_ITERS (writes per element per
// writer); the default keeps a release-mode ctest run under a second.

#include "ajac/runtime/shared_vector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "ajac/util/rng.hpp"

namespace ajac::runtime {
namespace {

index_t stress_iters(index_t dflt) {
  if (const char* env = std::getenv("AJAC_STRESS_ITERS")) {
    const long v = std::atol(env);
    // Upper bound keeps encode() below the per-element version stride.
    if (v > 0) return static_cast<index_t>(std::min(v, 1000000L));
  }
  return dflt;
}

/// Value written for (element, version): decodable and exactly
/// representable in a double for all stress sizes.
double encode(index_t element, index_t version) {
  return static_cast<double>(element * 1048576 + version);
}

void maybe_yield(Rng& rng) {
  if (rng.uniform_index(64) == 0) std::this_thread::yield();
}

TEST(StressSharedVector, SeqlockNeverPairsValueWithWrongVersion) {
  constexpr index_t kElements = 8;
  const index_t kWrites = stress_iters(2000);
  constexpr int kReaders = 3;

  SharedVector v(kElements, /*traced=*/true);
  {
    std::vector<double> init(kElements);
    for (index_t i = 0; i < kElements; ++i) init[i] = encode(i, 0);
    v.init(init);
  }

  std::atomic<bool> stop{false};
  std::atomic<index_t> torn{0};

  // One writer per element set (single-writer-per-element contract): a
  // lone writer thread sweeps all elements; readers hammer read_versioned
  // and plain read concurrently.
  std::thread writer([&] {
    Rng rng(42);
    for (index_t k = 1; k <= kWrites; ++k) {
      for (index_t i = 0; i < kElements; ++i) {
        v.write(i, encode(i, k));
        maybe_yield(rng);
      }
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::vector<index_t> reads_done(kReaders, 0);
  for (int rdr = 0; rdr < kReaders; ++rdr) {
    readers.emplace_back([&, rdr] {
      Rng rng(1000 + static_cast<std::uint64_t>(rdr));
      index_t count = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto i =
            static_cast<index_t>(rng.uniform_index(kElements));
        const auto [value, version] = v.read_versioned(i);
        if (value != encode(i, version)) {
          // racy-ok(monotonic): test-harness failure counter, read after join.
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        // Plain racy read: must still be *some* committed value of this
        // element (never a mix of two writes — doubles are atomic here).
        const double racy = v.read(i);
        const auto decoded = static_cast<index_t>(racy);
        if (decoded / 1048576 != i || decoded % 1048576 > kWrites) {
          // racy-ok(monotonic): test-harness failure counter, read after join.
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        ++count;
        maybe_yield(rng);
      }
      reads_done[static_cast<std::size_t>(rdr)] = count;
    });
  }

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0);
  for (index_t i = 0; i < kElements; ++i) {
    EXPECT_EQ(v.read(i), encode(i, kWrites));
    EXPECT_EQ(v.version(i), kWrites);
  }
}

TEST(StressSharedVector, ManyWritersDistinctElements) {
  // The runtime's actual sharing pattern: each thread owns a contiguous
  // block and writes only its own rows while reading everyone's.
  constexpr index_t kPerThread = 4;
  constexpr int kThreads = 4;
  constexpr index_t kElements = kPerThread * kThreads;
  const index_t kWrites = stress_iters(2000);

  SharedVector v(kElements, /*traced=*/true);
  {
    std::vector<double> init(kElements);
    for (index_t i = 0; i < kElements; ++i) init[i] = encode(i, 0);
    v.init(init);
  }

  std::atomic<index_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7 + static_cast<std::uint64_t>(t));
      const index_t lo = t * kPerThread;
      for (index_t k = 1; k <= kWrites; ++k) {
        for (index_t i = lo; i < lo + kPerThread; ++i) {
          v.write(i, encode(i, k));
        }
        // Read a random element owned by anyone (including mid-write
        // ones) through both access paths.
        const auto j =
            static_cast<index_t>(rng.uniform_index(kElements));
        const auto [value, version] = v.read_versioned(j);
        if (value != encode(j, version)) {
          // racy-ok(monotonic): test-harness failure counter, read after join.
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        maybe_yield(rng);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  for (index_t i = 0; i < kElements; ++i) {
    EXPECT_EQ(v.version(i), kWrites);
  }
}

TEST(StressSharedVector, UntracedRacyReadsSeeOnlyCommittedValues) {
  // The paper's plain scheme: no seqlock, relaxed atomic doubles. Readers
  // must only ever observe values some writer actually stored.
  constexpr index_t kElements = 4;
  const index_t kWrites = stress_iters(5000);

  SharedVector v(kElements, /*traced=*/false);
  {
    std::vector<double> init(kElements, 0.0);
    v.init(init);
  }

  std::atomic<bool> stop{false};
  std::atomic<index_t> bad{0};
  std::thread writer([&] {
    for (index_t k = 1; k <= kWrites; ++k) {
      for (index_t i = 0; i < kElements; ++i) v.write(i, encode(i, k));
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    Rng rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      const auto i = static_cast<index_t>(rng.uniform_index(kElements));
      const double value = v.read(i);
      const auto decoded = static_cast<index_t>(value);
      const bool committed = value == 0.0 || (decoded / 1048576 == i &&
                                              decoded % 1048576 <= kWrites);
      // racy-ok(monotonic): test-harness failure counter, read after join.
      if (!committed) bad.fetch_add(1, std::memory_order_relaxed);
      maybe_yield(rng);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace ajac::runtime
