// Differential batch-equivalence suite: solve_shared_batch against k
// independent solve_shared runs.
//
// The batch path promises per-column bitwise equivalence whenever the
// scalar path itself is deterministic: synchronous mode at any thread
// count (barriers freeze x during the residual step) and asynchronous
// mode at one thread (deterministic lockstep). Each column of the batch
// must then reproduce the corresponding single-RHS run exactly — the
// fused kernels evaluate per-lane the same expressions in the same order,
// a converged column freezes at its verified-stop boundary via a select
// blend (so frozen lanes republish identical bits), and the per-column
// polish mirrors the scalar epilogue. Comparisons are on raw bit
// patterns, so a -0.0/+0.0 discrepancy would also fail.

#include "ajac/runtime/shared_jacobi.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/obs/metrics.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/multi_vector.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac::runtime {
namespace {

struct NamedMatrix {
  const char* name;
  CsrMatrix a;
};

/// Same families as kernel_equiv_test.cpp: FD 5-point, FD 7-point, and the
/// unstructured (not W.D.D.) FE matrix.
std::vector<NamedMatrix> test_matrices() {
  std::vector<NamedMatrix> out;
  out.push_back({"fd5pt_12x12", gen::fd_laplacian_2d(12, 12)});
  out.push_back({"fd7pt_5x5x5", gen::fd_laplacian_3d(5, 5, 5)});
  gen::FeMeshOptions fe;
  fe.nx = 8;
  fe.ny = 8;
  out.push_back({"fe_8x8", gen::fe_laplacian_2d(fe)});
  return out;
}

/// k columns of genuinely distinct data so per-column freezing is
/// exercised: every column draws its own b and x0 from the seed stream.
struct BatchProblem {
  CsrMatrix a;
  MultiVector b;
  MultiVector x0;
};

BatchProblem make_batch_problem(CsrMatrix a, index_t k, std::uint64_t seed) {
  const index_t n = a.num_rows();
  BatchProblem p{std::move(a), MultiVector(n, k), MultiVector(n, k)};
  Rng rng(seed);
  for (index_t c = 0; c < k; ++c) {
    for (index_t i = 0; i < n; ++i) p.b(i, c) = rng.uniform(-1.0, 1.0);
    for (index_t i = 0; i < n; ++i) p.x0(i, c) = rng.uniform(-1.0, 1.0);
  }
  return p;
}

Vector column_of(const MultiVector& m, index_t c) {
  Vector out(static_cast<std::size_t>(m.num_rows()));
  for (index_t i = 0; i < m.num_rows(); ++i) {
    out[static_cast<std::size_t>(i)] = m(i, c);
  }
  return out;
}

void expect_column_bitwise(const MultiVector& batch, index_t c,
                           const Vector& scalar) {
  ASSERT_EQ(static_cast<std::size_t>(batch.num_rows()), scalar.size());
  for (index_t i = 0; i < batch.num_rows(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(batch(i, c)),
              std::bit_cast<std::uint64_t>(scalar[static_cast<std::size_t>(i)]))
        << "column " << c << " diverged at row " << i << ": " << batch(i, c)
        << " vs " << scalar[static_cast<std::size_t>(i)];
  }
}

/// Run the batch and the k single-RHS solves under the same options and
/// require bitwise-identical columns plus matching bookkeeping.
void expect_batch_matches_singles(const BatchProblem& p, SharedOptions opts) {
  const SharedBatchResult batch =
      solve_shared_batch(p.a, p.b, p.x0, opts);
  const index_t k = p.b.num_cols();
  ASSERT_EQ(batch.x.num_cols(), k);
  for (index_t c = 0; c < k; ++c) {
    SCOPED_TRACE(::testing::Message() << "column " << c);
    const SharedResult single =
        solve_shared(p.a, column_of(p.b, c), column_of(p.x0, c), opts);
    expect_column_bitwise(batch.x, c, single.x);
    EXPECT_EQ(batch.converged[static_cast<std::size_t>(c)], single.converged);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  batch.final_rel_residual_1[static_cast<std::size_t>(c)]),
              std::bit_cast<std::uint64_t>(single.final_rel_residual_1));
    EXPECT_EQ(batch.polish_sweeps[static_cast<std::size_t>(c)],
              single.polish_sweeps);
  }
}

TEST(BatchEquiv, SynchronousMatchesIndependentSolves) {
  for (auto& [name, a] : test_matrices()) {
    SCOPED_TRACE(name);
    for (const auto kernel : {KernelKind::kBlocked, KernelKind::kReference}) {
      SCOPED_TRACE(kernel == KernelKind::kBlocked ? "blocked" : "reference");
      const BatchProblem p =
          make_batch_problem(CsrMatrix(a), 4, ajac::testing::test_seed(91));
      SharedOptions opts;
      opts.num_threads = 3;
      opts.synchronous = true;
      opts.tolerance = 1e-8;
      opts.max_iterations = 40000;
      opts.record_history = false;
      opts.kernel = kernel;
      expect_batch_matches_singles(p, opts);
    }
  }
}

TEST(BatchEquiv, SingleThreadAsyncZeroUlp) {
  for (auto& [name, a] : test_matrices()) {
    SCOPED_TRACE(name);
    for (const auto kernel : {KernelKind::kBlocked, KernelKind::kReference}) {
      SCOPED_TRACE(kernel == KernelKind::kBlocked ? "blocked" : "reference");
      const BatchProblem p =
          make_batch_problem(CsrMatrix(a), 3, ajac::testing::test_seed(93));
      SharedOptions opts;
      opts.num_threads = 1;
      opts.tolerance = 1e-8;
      opts.max_iterations = 40000;
      opts.record_history = false;
      opts.kernel = kernel;
      expect_batch_matches_singles(p, opts);
    }
  }
}

TEST(BatchEquiv, FixedIterationRunsMatch) {
  // Pure iteration-count runs (tolerance 0): no column ever freezes, so
  // the comparison is exactly N lockstep sweeps over every lane.
  const CsrMatrix a = gen::fd_laplacian_2d(9, 9);
  for (const index_t iters : {1, 2, 5, 17, 64}) {
    SCOPED_TRACE(::testing::Message() << "iterations " << iters);
    const BatchProblem p =
        make_batch_problem(CsrMatrix(a), 5, ajac::testing::test_seed(95));
    SharedOptions opts;
    opts.num_threads = 1;
    opts.tolerance = 0.0;
    opts.max_iterations = iters;
    opts.record_history = false;
    expect_batch_matches_singles(p, opts);
  }
}

TEST(BatchEquiv, ColumnsFreezeAtDifferentIterations) {
  // Column 0 starts at the zero solution of b = 0 (residual 0, so its
  // verified stop fires on the first check) while the other columns carry
  // random data and keep iterating. The frozen lane must ride along
  // without perturbing a single bit of the live columns.
  const CsrMatrix a = gen::fd_laplacian_2d(12, 12);
  BatchProblem p = make_batch_problem(CsrMatrix(a), 3,
                                      ajac::testing::test_seed(97));
  for (index_t i = 0; i < a.num_rows(); ++i) {
    p.b(i, 0) = 0.0;
    p.x0(i, 0) = 0.0;
  }
  SharedOptions opts;
  opts.num_threads = 2;
  opts.synchronous = true;
  opts.tolerance = 1e-8;
  opts.max_iterations = 40000;
  opts.record_history = false;

  const SharedBatchResult batch = solve_shared_batch(p.a, p.b, p.x0, opts);
  EXPECT_LT(batch.stop_iteration[0], batch.stop_iteration[1]);
  EXPECT_LT(batch.relaxations_per_column[0],
            batch.relaxations_per_column[1]);
  expect_batch_matches_singles(p, opts);
}

TEST(BatchEquiv, MetricsRegistryDoesNotPerturbResults) {
  const BatchProblem p = make_batch_problem(gen::fd_laplacian_2d(10, 10), 4,
                                            ajac::testing::test_seed(99));
  SharedOptions opts;
  opts.num_threads = 2;
  opts.synchronous = true;
  opts.tolerance = 1e-8;
  opts.max_iterations = 40000;
  opts.record_history = false;
  const SharedBatchResult plain = solve_shared_batch(p.a, p.b, p.x0, opts);

  obs::MetricsRegistry reg;
  opts.metrics = &reg;
  const SharedBatchResult instrumented =
      solve_shared_batch(p.a, p.b, p.x0, opts);

  for (index_t c = 0; c < p.b.num_cols(); ++c) {
    expect_column_bitwise(instrumented.x, c, column_of(plain.x, c));
  }
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto lanes = snap.totals[static_cast<std::size_t>(
      obs::Counter::kLaneRelaxations)];
  const auto rows = snap.totals[static_cast<std::size_t>(
      obs::Counter::kRelaxations)];
  // Every iteration relaxes all rows across however many columns were
  // still active, so lane relaxations are bounded by rows * k and at
  // least rows (no iteration runs with zero active columns).
  EXPECT_GE(lanes, rows);
  EXPECT_LE(lanes, rows * static_cast<std::uint64_t>(p.b.num_cols()));
}

TEST(BatchEquiv, SingleColumnFaultRunMatchesScalar) {
  // k = 1 batch under a fault plan must reproduce the scalar fault run
  // bitwise, including the injected-event log: ActiveBatchFaults hashes
  // the same (seed, thread, iteration, row) FaultClock coordinates.
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(10, 10),
                                   ajac::testing::test_seed(101));
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = ajac::testing::test_seed(103);
  plan->bit_flips.push_back({.actor = -1, .probability = 0.02, .bit = 12});
  plan->crashes.push_back({.actor = 0,
                           .crash_iteration = 6,
                           .dead_seconds = 1e-6,
                           .reset_state_on_recovery = true});
  plan->stale_reads.push_back({.actor = -1, .period = 8, .duty = 0.5});

  SharedOptions opts;
  opts.num_threads = 1;
  opts.tolerance = 0.0;
  opts.max_iterations = 60;
  opts.record_history = false;
  opts.fault_plan = plan;

  const SharedResult scalar = solve_shared(p.a, p.b, p.x0, opts);

  const index_t n = p.a.num_rows();
  MultiVector b(n, 1);
  MultiVector x0(n, 1);
  b.set_column(0, p.b);
  x0.set_column(0, p.x0);
  const SharedBatchResult batch = solve_shared_batch(p.a, b, x0, opts);

  expect_column_bitwise(batch.x, 0, scalar.x);
  ASSERT_EQ(batch.fault_events.size(), scalar.fault_events.size());
  for (std::size_t e = 0; e < batch.fault_events.size(); ++e) {
    EXPECT_EQ(batch.fault_events[e], scalar.fault_events[e])
        << "fault log diverged at event " << e;
  }
  EXPECT_FALSE(batch.fault_events.empty());
}

TEST(BatchEquiv, FaultRunsAreDeterministic) {
  // Multi-column fault runs: two executions of the same plan must agree
  // bitwise and log the identical events — one decision per row per
  // iteration, applied to every lane.
  const BatchProblem p = make_batch_problem(gen::fd_laplacian_2d(8, 8), 4,
                                            ajac::testing::test_seed(105));
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = ajac::testing::test_seed(107);
  plan->bit_flips.push_back({.actor = -1, .probability = 0.05, .bit = 20});
  plan->stale_reads.push_back({.actor = -1, .period = 6, .duty = 0.5});

  SharedOptions opts;
  opts.num_threads = 1;
  opts.tolerance = 0.0;
  opts.max_iterations = 40;
  opts.record_history = false;
  opts.fault_plan = plan;

  const SharedBatchResult first = solve_shared_batch(p.a, p.b, p.x0, opts);
  const SharedBatchResult second = solve_shared_batch(p.a, p.b, p.x0, opts);
  for (index_t c = 0; c < p.b.num_cols(); ++c) {
    expect_column_bitwise(first.x, c, column_of(second.x, c));
  }
  ASSERT_EQ(first.fault_events.size(), second.fault_events.size());
  for (std::size_t e = 0; e < first.fault_events.size(); ++e) {
    EXPECT_EQ(first.fault_events[e], second.fault_events[e]);
  }
  EXPECT_FALSE(first.fault_events.empty());
}

TEST(BatchEquiv, AsyncMultiThreadConvergesPerColumn) {
  // The racy regime has no bitwise oracle; assert the solve contract
  // instead: every column's final serial residual meets the tolerance.
  const BatchProblem p = make_batch_problem(gen::fd_laplacian_2d(16, 16), 4,
                                            ajac::testing::test_seed(109));
  SharedOptions opts;
  opts.num_threads = 4;
  opts.tolerance = 1e-8;
  opts.max_iterations = 40000;
  opts.record_history = false;
  opts.yield = true;
  const SharedBatchResult r = solve_shared_batch(p.a, p.b, p.x0, opts);
  for (index_t c = 0; c < p.b.num_cols(); ++c) {
    EXPECT_TRUE(r.converged[static_cast<std::size_t>(c)]) << "column " << c;
    EXPECT_LE(r.final_rel_residual_1[static_cast<std::size_t>(c)], 1e-8)
        << "column " << c;
  }
}

}  // namespace
}  // namespace ajac::runtime
