// Property tests for the pluggable row-selection policies
// (ajac/runtime/row_policy.hpp): the PolicyClock stream contract, uniform
// coverage within concentration bounds, weighted frequencies tracking the
// |r_i| weights, the zero-weight fallback, and the natural-order inertness
// guarantee (policy fields present but policy == kNaturalOrder must leave
// the solver bitwise unchanged). Each property sweeps many seeds derived
// from testing::test_seed so the suite runs a few hundred seeded cases.

#include "ajac/runtime/row_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/csr.hpp"
#include "test_helpers.hpp"

namespace ajac::runtime {
namespace {

using ajac::testing::test_seed;

TEST(PropRowPolicy, StreamIsCoordinateDeterministic) {
  // Draws are a pure function of (seed, worker, iter, slot): rebuilding the
  // sampler — or drawing the coordinates in any order — changes nothing.
  for (std::uint64_t s = 0; s < 40; ++s) {
    const std::uint64_t seed = test_seed(s);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    RowSampler a(RowPolicy::kUniformRandom, seed, /*worker=*/2, 10, 42, 4);
    RowSampler b(RowPolicy::kUniformRandom, seed, /*worker=*/2, 10, 42, 4);
    for (index_t iter = 0; iter < 8; ++iter) {
      for (index_t slot = 0; slot < 32; ++slot) {
        EXPECT_EQ(a.next(iter, slot), b.next(iter, slot));
      }
    }
    // Reversed replay on a fresh sampler: still identical (no hidden
    // sequential state).
    RowSampler c(RowPolicy::kUniformRandom, seed, /*worker=*/2, 10, 42, 4);
    for (index_t iter = 7; iter >= 0; --iter) {
      for (index_t slot = 31; slot >= 0; --slot) {
        EXPECT_EQ(c.next(iter, slot), a.next(iter, slot));
      }
    }
  }
}

TEST(PropRowPolicy, DistinctWorkersAndSeedsDecorrelate) {
  for (std::uint64_t s = 0; s < 20; ++s) {
    const std::uint64_t seed = test_seed(100 + s);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    RowSampler w0(RowPolicy::kUniformRandom, seed, 0, 0, 64, 4);
    RowSampler w1(RowPolicy::kUniformRandom, seed, 1, 0, 64, 4);
    RowSampler other(RowPolicy::kUniformRandom, seed + 1, 0, 0, 64, 4);
    int same_worker = 0;
    int same_seed = 0;
    const int draws = 256;
    for (index_t k = 0; k < draws; ++k) {
      if (w0.next(k, 0) == w1.next(k, 0)) ++same_worker;
      if (w0.next(k, 0) == other.next(k, 0)) ++same_seed;
    }
    // Independent uniform streams over 64 rows collide ~1/64 of the time;
    // identical streams would collide 256/256.
    EXPECT_LT(same_worker, draws / 8);
    EXPECT_LT(same_seed, draws / 8);
  }
}

TEST(PropRowPolicy, PolicyClockIndependentOfFaultClock) {
  // The PolicyClock salts the seed, so even at identical (stream, a, b, c)
  // coordinates its bits never track the FaultClock built from the same
  // plan seed — sharing one seed between a fault plan and the policy
  // stream is safe.
  for (std::uint64_t s = 0; s < 40; ++s) {
    const std::uint64_t seed = test_seed(200 + s);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const PolicyClock pc(seed);
    const fault::FaultClock fc(seed);
    for (std::uint64_t a = 0; a < 5; ++a) {
      for (std::uint64_t b = 0; b < 5; ++b) {
        EXPECT_NE(pc.bits(PolicyClock::kRowPick, a, b, 0),
                  fc.bits(fault::FaultClock::kStragglerStream, a, b, 0));
      }
    }
  }
}

TEST(PropRowPolicy, UniformCoverageWithinConcentrationBounds) {
  // Every row of the block is visited T +- 6 sqrt(T) times over T
  // iterations of n draws (Chernoff-style concentration for the binomial
  // count with mean T).
  const index_t n = 64;
  const index_t iters = 2000;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const std::uint64_t seed = test_seed(300 + s);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    RowSampler sampler(RowPolicy::kUniformRandom, seed, 0, 0, n, 4);
    std::vector<index_t> counts(static_cast<std::size_t>(n), 0);
    for (index_t iter = 0; iter < iters; ++iter) {
      for (index_t slot = 0; slot < n; ++slot) {
        const index_t i = sampler.next(iter, slot);
        ASSERT_GE(i, 0);
        ASSERT_LT(i, n);
        ++counts[static_cast<std::size_t>(i)];
      }
    }
    const double dev = 6.0 * std::sqrt(static_cast<double>(iters));
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(i)]),
                  static_cast<double>(iters), dev)
          << "row " << i;
    }
  }
}

/// Expected draw probabilities for a fixed weight snapshot, mirroring the
/// documented transform exactly: clamp raw |w_i| at kWeightCap * mean(|w|),
/// then blend in the kUniformMix exploration floor.
std::vector<double> expected_probabilities(const std::vector<double>& w) {
  const auto n = static_cast<double>(w.size());
  double raw_total = 0.0;
  for (const double wi : w) raw_total += std::abs(wi);
  const double cap = RowSampler::kWeightCap * raw_total / n;
  std::vector<double> clamped(w.size());
  double clamped_total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    clamped[i] = std::min(std::abs(w[i]), cap);
    clamped_total += clamped[i];
  }
  const double mix = RowSampler::kUniformMix;
  std::vector<double> p(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    p[i] = (clamped[i] + mix * clamped_total / n) /
           (clamped_total * (1.0 + mix));
  }
  return p;
}

void expect_weighted_frequencies(const std::vector<double>& w,
                                 std::uint64_t seed, index_t iters) {
  const auto n = static_cast<index_t>(w.size());
  RowSampler sampler(RowPolicy::kResidualWeighted, seed, 0, 0, n, 1);
  std::vector<index_t> counts(w.size(), 0);
  for (index_t iter = 0; iter < iters; ++iter) {
    if (sampler.refresh_due(iter)) {
      sampler.refresh_weights(
          [&](index_t i) { return w[static_cast<std::size_t>(i)]; });
    }
    for (index_t slot = 0; slot < n; ++slot) {
      ++counts[static_cast<std::size_t>(sampler.next(iter, slot))];
    }
  }
  const double draws = static_cast<double>(iters) * static_cast<double>(n);
  const std::vector<double> p = expected_probabilities(w);
  for (index_t i = 0; i < n; ++i) {
    const double freq =
        static_cast<double>(counts[static_cast<std::size_t>(i)]) / draws;
    const double sigma =
        std::sqrt(p[static_cast<std::size_t>(i)] *
                  (1.0 - p[static_cast<std::size_t>(i)]) / draws);
    EXPECT_NEAR(freq, p[static_cast<std::size_t>(i)], 6.0 * sigma + 1e-12)
        << "row " << i;
  }
}

TEST(PropRowPolicy, WeightedFrequenciesTrackWeights) {
  // With fixed weights w_i the empirical draw frequency of row i must
  // approach the documented mixture of the clamped weight and the
  // exploration floor (see expected_probabilities) — the prefix-sum
  // inversion samples the intended distribution. The ramp keeps every
  // weight under kWeightCap * mean, so here clamped == |w_i|.
  const index_t n = 16;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const std::uint64_t seed = test_seed(400 + s);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::vector<double> w(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      // Deterministic skewed weights, including a sign flip: the sampler
      // must weight by |w_i|.
      w[static_cast<std::size_t>(i)] =
          (i % 2 == 0 ? 1.0 : -1.0) * static_cast<double>(i + 1);
    }
    expect_weighted_frequencies(w, seed, /*iters=*/3000);
  }
}

TEST(PropRowPolicy, WeightedClampBoundsSpikeRows) {
  // A single spike carrying ~90% of the raw mass must be clamped to
  // kWeightCap * mean: the spike's draw rate lands on the capped
  // probability, and the remaining mass is redistributed to the flat rows
  // instead of being starved.
  const index_t n = 16;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const std::uint64_t seed = test_seed(450 + s);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::vector<double> w(static_cast<std::size_t>(n), 1.0);
    w[3] = 135.0;  // raw mass 150, mean 9.375, cap 18.75 << 135
    expect_weighted_frequencies(w, seed, /*iters=*/3000);
  }
}

TEST(PropRowPolicy, ZeroWeightsFallBackToUniformStream) {
  // An all-zero weight snapshot (e.g. a solved block) must degrade to the
  // uniform stream, not to a degenerate row: the two samplers draw the
  // same rows coordinate for coordinate because the fallback reuses the
  // kRowPick stream.
  for (std::uint64_t s = 0; s < 20; ++s) {
    const std::uint64_t seed = test_seed(500 + s);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    RowSampler weighted(RowPolicy::kResidualWeighted, seed, 3, 5, 37, 1);
    weighted.refresh_weights([](index_t) { return 0.0; });
    RowSampler uniform(RowPolicy::kUniformRandom, seed, 3, 5, 37, 1);
    for (index_t iter = 0; iter < 16; ++iter) {
      for (index_t slot = 0; slot < 32; ++slot) {
        EXPECT_EQ(weighted.next(iter, slot), uniform.next(iter, slot));
      }
    }
  }
}

TEST(PropRowPolicy, WeightedDrawsStayInRange) {
  for (std::uint64_t s = 0; s < 20; ++s) {
    const std::uint64_t seed = test_seed(600 + s);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const index_t lo = 7;
    const index_t hi = 29;
    RowSampler sampler(RowPolicy::kResidualWeighted, seed, 1, lo, hi, 1);
    // Extreme skew: all weight on the last row still may not escape the
    // block, and the clamp keeps upper_bound's end() case in range.
    sampler.refresh_weights(
        [&](index_t i) { return i == hi - 1 ? 1e30 : 1e-30; });
    for (index_t iter = 0; iter < 50; ++iter) {
      for (index_t slot = 0; slot < 22; ++slot) {
        const index_t i = sampler.next(iter, slot);
        ASSERT_GE(i, lo);
        ASSERT_LT(i, hi);
      }
    }
  }
}

TEST(PropRowPolicy, NaturalOrderLeavesSolverBitwiseUnchanged) {
  // The policy fields are inert on the natural path: setting them (with
  // the policy left at kNaturalOrder) must not move a single bit of the
  // solution. Synchronous multi-thread runs are deterministic, so the
  // comparison is exact.
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(10, 10),
                                   test_seed(700));
  for (const KernelKind kernel :
       {KernelKind::kBlocked, KernelKind::kReference}) {
    SharedOptions base;
    base.num_threads = 4;
    base.synchronous = true;
    base.tolerance = 0.0;
    base.max_iterations = 40;
    base.record_history = false;
    base.kernel = kernel;
    const SharedResult plain = solve_shared(p.a, p.b, p.x0, base);

    SharedOptions tagged = base;
    tagged.policy = RowPolicy::kNaturalOrder;  // explicit default
    tagged.policy_seed = 0xfeedULL;            // inert without sampling
    tagged.weight_refresh = 3;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, tagged);
    ASSERT_EQ(plain.x.size(), r.x.size());
    for (std::size_t i = 0; i < plain.x.size(); ++i) {
      ASSERT_EQ(plain.x[i], r.x[i]) << "kernel " << static_cast<int>(kernel)
                                    << " row " << i;
    }
    EXPECT_EQ(plain.total_relaxations, r.total_relaxations);
  }
}

TEST(PropRowPolicy, SampledConfigChecks) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(6, 6),
                                   test_seed(800));
  SharedOptions o;
  o.num_threads = 2;
  o.max_iterations = 4;
  o.tolerance = 0.0;
  o.record_history = false;
  o.policy = RowPolicy::kUniformRandom;

  SharedOptions sync = o;
  sync.synchronous = true;
  EXPECT_THROW(solve_shared(p.a, p.b, p.x0, sync), std::logic_error);

  SharedOptions gs = o;
  gs.local_gauss_seidel = true;
  EXPECT_THROW(solve_shared(p.a, p.b, p.x0, gs), std::logic_error);

  SharedOptions bad_refresh = o;
  bad_refresh.policy = RowPolicy::kResidualWeighted;
  bad_refresh.weight_refresh = 0;
  EXPECT_THROW(solve_shared(p.a, p.b, p.x0, bad_refresh), std::logic_error);
}

}  // namespace
}  // namespace ajac::runtime
