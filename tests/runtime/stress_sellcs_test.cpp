// Concurrency stress harness for the kSellCS data plane (designed to run
// under ThreadSanitizer: `ctest --preset tsan` — the suite name matches
// the tsan preset's test filter).
//
// What makes this path racier than the blocked kernel it extends:
//
//   * each thread refreshes a dense ghost buffer once per local iteration
//     with a burst of x.read() calls against columns its neighbours are
//     concurrently committing — a bulk racy-read pattern the per-entry
//     blocked reads never batch up;
//   * with fp32 ghosts every commit is followed by publish_shadow()
//     rewriting the thread's slice of the SharedF32Vector while neighbour
//     refreshes read it relaxed — a second shared vector with its own
//     lifetime and initialization handoff.
//
// Both races are intended (relaxed atomics; see racy-ok annotations in
// shared_vector.hpp), so the point under TSan is proving the *rest* of
// the machinery — buffer sizing, shadow init, first-touch SELL
// construction, fork/join edges — is clean. Each run also verifies the
// solver's postconditions, so the file doubles as a correctness soak.

#include "ajac/runtime/shared_jacobi.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "test_helpers.hpp"

namespace ajac::runtime {
namespace {

gen::LinearProblem small_problem(std::uint64_t salt) {
  return gen::make_problem("fd", gen::fd_laplacian_2d(10, 10),
                           ajac::testing::test_seed(salt));
}

void verify_result(const gen::LinearProblem& p, const SharedResult& r,
                   double tolerance) {
  SCOPED_TRACE(::testing::Message()
               << "reproduce with AJAC_TEST_SEED="
               << ajac::testing::test_seed() << " (base seed)");
  EXPECT_TRUE(r.converged);
  Vector res(p.b.size());
  p.a.residual(r.x, p.b, res);
  Vector r0(p.b.size());
  p.a.residual(p.x0, p.b, r0);
  EXPECT_LE(vec::norm1(res) / vec::norm1(r0), tolerance * 1.5);
}

TEST(StressSellCS, AsyncThreadSweep) {
  // Oversubscribed + yield maximizes interleavings of whole-buffer ghost
  // refreshes against neighbour commits.
  const auto p = small_problem(61);
  for (index_t threads : {1, 2, 4, 8}) {
    SharedOptions so;
    so.num_threads = threads;
    so.kernel = KernelKind::kSellCS;
    so.tolerance = 1e-5;
    so.max_iterations = 200000;
    so.record_history = false;
    so.yield = true;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
    verify_result(p, r, so.tolerance);
  }
}

TEST(StressSellCS, Fp32ShadowUnderPressure) {
  // The fp32 shadow adds a publish after every commit and redirects every
  // refresh read — the densest producer/consumer traffic the path has.
  // Tolerance sits above the fp32 ghost noise floor (see GhostPrecision).
  const auto p = small_problem(63);
  for (index_t threads : {2, 4, 8}) {
    SharedOptions so;
    so.num_threads = threads;
    so.kernel = KernelKind::kSellCS;
    so.ghost_precision = GhostPrecision::kFp32;
    so.tolerance = 1e-5;
    so.max_iterations = 200000;
    so.record_history = false;
    so.yield = true;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
    verify_result(p, r, so.tolerance);
  }
}

TEST(StressSellCS, SynchronousBarrierSweep) {
  // Synchronous mode hands the whole committed x across a barrier into
  // the next round's refreshes — the handoff the bitwise-equivalence
  // contract leans on; TSan checks the barrier edges carry it.
  const auto p = small_problem(65);
  for (index_t threads : {2, 4}) {
    SharedOptions so;
    so.num_threads = threads;
    so.kernel = KernelKind::kSellCS;
    so.synchronous = true;
    so.tolerance = 1e-5;
    so.max_iterations = 20000;
    so.record_history = true;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
    verify_result(p, r, so.tolerance);
  }
}

TEST(StressSellCS, NnzPartitionWithStragglers) {
  // The production configuration at large n: nnz-balanced partition plus
  // injected stragglers, so refresh bursts hit blocks mid-commit at
  // staggered phases.
  const auto p = small_problem(67);
  SharedOptions so;
  so.num_threads = 4;
  so.kernel = KernelKind::kSellCS;
  so.partition = partition::nnz_balanced_partition(p.a, 4);
  so.tolerance = 1e-4;
  so.max_iterations = 200000;
  so.record_history = false;
  so.delay_us = {120.0, 0.0, 60.0, 0.0};  // two stragglers
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  verify_result(p, r, so.tolerance);
}

TEST(StressSellCS, BackToBackSolvesReuseThreadPool) {
  // Alternate fp64/fp32 ghosts across pooled-thread reuse: the SellCsr
  // and shadow are rebuilt per solve, so stale happens-before edges from
  // a previous solve's first-touch fill would surface here.
  const auto p = small_problem(69);
  for (int round = 0; round < 5; ++round) {
    SharedOptions so;
    so.num_threads = 3;
    so.kernel = KernelKind::kSellCS;
    so.ghost_precision =
        (round % 2 == 0) ? GhostPrecision::kFp64 : GhostPrecision::kFp32;
    so.tolerance = 1e-4;
    so.max_iterations = 200000;
    so.record_history = false;
    so.yield = true;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
    verify_result(p, r, so.tolerance);
  }
}

}  // namespace
}  // namespace ajac::runtime
