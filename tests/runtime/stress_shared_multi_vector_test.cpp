// Concurrency stress harness for SharedMultiVector's per-ROW seqlock
// (designed to run under ThreadSanitizer: `ctest --preset tsan`).
//
// The per-row seqlock's claim is stronger than the scalar SharedVector's:
// read_row_versioned must return all k lanes of a row as one consistent
// snapshot — every lane from the *same* write — paired with the version of
// that write. The harness encodes (row, version, lane) into every written
// value, so a snapshot mixing lanes from two writes, or pairing a snapshot
// with the wrong version, decodes to a mismatch and fails loudly. The
// untraced path promises less (per-lane relaxed atomics may tear across a
// concurrent write) and is checked for exactly that weaker contract: each
// lane individually is some committed value of that (row, lane).
//
// Intensity is tunable via AJAC_STRESS_ITERS (writes per row per writer).

#include "ajac/runtime/shared_multi_vector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "ajac/sparse/multi_vector.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::runtime {
namespace {

index_t stress_iters(index_t dflt) {
  if (const char* env = std::getenv("AJAC_STRESS_ITERS")) {
    const long v = std::atol(env);
    // Upper bound keeps encode() exactly representable in a double.
    if (v > 0) return static_cast<index_t>(std::min(v, 1000000L));
  }
  return dflt;
}

/// Value written to lane c of row i at version v: decodable, and exactly
/// representable in a double for all stress sizes (< 2^53).
double encode(index_t row, index_t version, index_t lane) {
  return static_cast<double>((row * 1048576 + version) * 16 + lane);
}

void maybe_yield(Rng& rng) {
  if (rng.uniform_index(64) == 0) std::this_thread::yield();
}

void init_rows(SharedMultiVector& v, index_t n, index_t k) {
  MultiVector x0(n, k);
  for (index_t i = 0; i < n; ++i) {
    for (index_t c = 0; c < k; ++c) x0(i, c) = encode(i, 0, c);
  }
  v.init(x0);
}

TEST(StressSharedMultiVector, RowSnapshotsNeverMixWrites) {
  constexpr index_t kRows = 6;
  constexpr index_t kLanes = 8;
  const index_t kWrites = stress_iters(2000);
  constexpr int kReaders = 3;

  SharedMultiVector v(kRows, kLanes, /*traced=*/true);
  init_rows(v, kRows, kLanes);

  std::atomic<bool> stop{false};
  std::atomic<index_t> torn{0};

  // Single writer sweeps all rows (single-writer-per-row contract);
  // readers hammer versioned row snapshots concurrently.
  std::thread writer([&] {
    Rng rng(42);
    std::vector<double> row(kLanes);
    for (index_t w = 1; w <= kWrites; ++w) {
      for (index_t i = 0; i < kRows; ++i) {
        for (index_t c = 0; c < kLanes; ++c) {
          row[static_cast<std::size_t>(c)] = encode(i, w, c);
        }
        v.write_row(i, row);
        maybe_yield(rng);
      }
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < kReaders; ++rdr) {
    readers.emplace_back([&, rdr] {
      Rng rng(1000 + static_cast<std::uint64_t>(rdr));
      std::vector<double> snap(kLanes);
      while (!stop.load(std::memory_order_acquire)) {
        const auto i = static_cast<index_t>(rng.uniform_index(kRows));
        const index_t version = v.read_row_versioned(i, snap);
        for (index_t c = 0; c < kLanes; ++c) {
          if (snap[static_cast<std::size_t>(c)] != encode(i, version, c)) {
            // racy-ok(monotonic): test-harness failure counter, read after join.
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        maybe_yield(rng);
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0);
  std::vector<double> snap(kLanes);
  for (index_t i = 0; i < kRows; ++i) {
    EXPECT_EQ(v.version(i), kWrites);
    EXPECT_EQ(v.read_row_versioned(i, snap), kWrites);
    for (index_t c = 0; c < kLanes; ++c) {
      EXPECT_EQ(snap[static_cast<std::size_t>(c)], encode(i, kWrites, c));
    }
  }
}

TEST(StressSharedMultiVector, ManyWritersDistinctRows) {
  // The runtime's actual sharing pattern: each thread owns a contiguous
  // row block, publishes whole rows of its block, and snapshot-reads
  // anyone's rows (its neighbors' boundary rows in the real solver).
  constexpr index_t kPerThread = 3;
  constexpr int kThreads = 4;
  constexpr index_t kRows = kPerThread * kThreads;
  constexpr index_t kLanes = 4;
  const index_t kWrites = stress_iters(2000);

  SharedMultiVector v(kRows, kLanes, /*traced=*/true);
  init_rows(v, kRows, kLanes);

  std::atomic<index_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7 + static_cast<std::uint64_t>(t));
      const index_t lo = t * kPerThread;
      std::vector<double> row(kLanes);
      std::vector<double> snap(kLanes);
      for (index_t w = 1; w <= kWrites; ++w) {
        for (index_t i = lo; i < lo + kPerThread; ++i) {
          for (index_t c = 0; c < kLanes; ++c) {
            row[static_cast<std::size_t>(c)] = encode(i, w, c);
          }
          v.write_row(i, row);
        }
        const auto j = static_cast<index_t>(rng.uniform_index(kRows));
        const index_t version = v.read_row_versioned(j, snap);
        for (index_t c = 0; c < kLanes; ++c) {
          if (snap[static_cast<std::size_t>(c)] != encode(j, version, c)) {
            // racy-ok(monotonic): test-harness failure counter, read after join.
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        maybe_yield(rng);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  for (index_t i = 0; i < kRows; ++i) {
    EXPECT_EQ(v.version(i), kWrites);
  }
}

TEST(StressSharedMultiVector, UntracedRowReadsSeeOnlyCommittedLanes) {
  // The solver's hot path: no seqlock, per-lane relaxed atomics. A row
  // read may tear across a concurrent write_row, but each lane must still
  // be some value actually written to that (row, lane).
  constexpr index_t kRows = 3;
  constexpr index_t kLanes = 4;
  const index_t kWrites = stress_iters(5000);

  SharedMultiVector v(kRows, kLanes, /*traced=*/false);
  init_rows(v, kRows, kLanes);

  std::atomic<bool> stop{false};
  std::atomic<index_t> bad{0};
  std::thread writer([&] {
    std::vector<double> row(kLanes);
    for (index_t w = 1; w <= kWrites; ++w) {
      for (index_t i = 0; i < kRows; ++i) {
        for (index_t c = 0; c < kLanes; ++c) {
          row[static_cast<std::size_t>(c)] = encode(i, w, c);
        }
        v.write_row(i, row);
      }
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    Rng rng(99);
    std::vector<double> snap(kLanes);
    while (!stop.load(std::memory_order_acquire)) {
      const auto i = static_cast<index_t>(rng.uniform_index(kRows));
      v.read_row(i, snap);
      for (index_t c = 0; c < kLanes; ++c) {
        const auto decoded =
            static_cast<index_t>(snap[static_cast<std::size_t>(c)]);
        const index_t lane = decoded % 16;
        const index_t version = (decoded / 16) % 1048576;
        const index_t row_id = decoded / 16 / 1048576;
        if (lane != c || row_id != i || version > kWrites) {
          // racy-ok(monotonic): test-harness failure counter, read after join.
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
      maybe_yield(rng);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace ajac::runtime
