// Empirical verification of the randomized-relaxation rate bound
// (Avron, Druinsky & Gupta, arXiv:1304.6475): for a unit-diagonal SPD
// matrix Â, uniform single-row relaxation contracts the expected A-norm
// error energy by at least (1 - lambda_min(Â)/n) per relaxation, and the
// *tail* rate approaches that factor exactly as the error concentrates on
// the minimal eigenvector. The suite measures the realized tail contraction
// of the RowSampler's own draw stream on FD, FE, and a non-W.D.D. matrix
// (where natural-order synchronous Jacobi has no classical guarantee) and
// pins it to the theoretical factor, plus two solver-level corollaries:
// end-to-end uniform relaxation counts within the bound's prediction, and
// residual weighting beating natural order on a skewed-residual problem.
//
// Everything is seeded through testing::test_seed, so the measured rates
// are deterministic for a fixed AJAC_TEST_SEED across presets.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "ajac/eig/lanczos.hpp"
#include "ajac/eig/operators.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/runtime/row_policy.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/scaling.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac::runtime {
namespace {

using ajac::testing::test_seed;

/// lambda_min of a unit-diagonal SPD matrix (the quantity the bound is
/// stated in). Lanczos handles every size used here.
double lambda_min(const CsrMatrix& ahat) {
  const auto r = eig::lanczos_extreme(eig::make_operator(ahat));
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.lambda_min, 0.0) << "test matrix must be SPD";
  return r.lambda_min;
}

/// ||x - x*||_A^2 for unit-diagonal SPD ahat.
double energy(const CsrMatrix& ahat, const Vector& x, const Vector& xstar) {
  const auto n = x.size();
  Vector e(n);
  Vector ae(n);
  for (std::size_t i = 0; i < n; ++i) e[i] = x[i] - xstar[i];
  ahat.spmv(e, ae);
  return vec::dot(e, ae);
}

/// Realized per-relaxation tail contraction of sequential uniform
/// coordinate descent driven by the RowSampler stream: manufacture
/// x* ~ U[-1,1], b = Â x*, start from x = 0, relax `iters` sweeps of n
/// draws each, and fit the geometric rate of the A-norm energy over the
/// window after `burn_in` sweeps (the burn-in lets the fast modes die so
/// the tail is governed by lambda_min).
double measured_tail_contraction(const CsrMatrix& ahat, std::uint64_t seed,
                                 index_t iters, index_t burn_in) {
  const index_t n = ahat.num_rows();
  const auto n_sz = static_cast<std::size_t>(n);
  Vector xstar(n_sz);
  Rng rng(seed);
  vec::fill_uniform(xstar, rng);
  Vector b(n_sz);
  ahat.spmv(xstar, b);
  Vector x(n_sz, 0.0);

  RowSampler sampler(RowPolicy::kUniformRandom, seed, /*worker=*/0, 0, n, 1);
  double e_burn = 0.0;
  for (index_t iter = 0; iter < iters; ++iter) {
    if (iter == burn_in) e_burn = energy(ahat, x, xstar);
    for (index_t slot = 0; slot < n; ++slot) {
      const index_t i = sampler.next(iter, slot);
      const double r =
          b[static_cast<std::size_t>(i)] - ahat.row_dot(i, x);
      x[static_cast<std::size_t>(i)] += r;  // unit diagonal
    }
  }
  const double e_end = energy(ahat, x, xstar);
  EXPECT_GT(e_burn, 0.0);
  EXPECT_GT(e_end, 0.0) << "window left: shrink iters or grow the matrix";
  const double relaxations =
      static_cast<double>(iters - burn_in) * static_cast<double>(n);
  return std::pow(e_end / e_burn, 1.0 / relaxations);
}

/// Measured tail rate vs rho = 1 - lambda_min/n, compared in terms of the
/// contraction *gap* (1 - rate): rates this close to 1 make direct ratio
/// comparisons meaningless. The expectation bound guarantees gap >= gap_t
/// on average; concentration on the minimal eigenvector drives it down to
/// gap_t from above. A single realization fluctuates, so the assertion
/// brackets the measured gap in [lo_factor, hi_factor] * theoretical.
void expect_rate_matches_bound(const CsrMatrix& ahat, std::uint64_t seed,
                               index_t iters, index_t burn_in,
                               double lo_factor, double hi_factor,
                               const std::string& what) {
  const double lmin = lambda_min(ahat);
  const double n = static_cast<double>(ahat.num_rows());
  const double gap_t = lmin / n;  // 1 - rho
  const double rate = measured_tail_contraction(ahat, seed, iters, burn_in);
  const double gap_m = 1.0 - rate;
  EXPECT_GE(gap_m, lo_factor * gap_t)
      << what << ": measured rate " << rate << " is *slower* than the "
      << "theoretical bound 1 - " << gap_t << " allows";
  EXPECT_LE(gap_m, hi_factor * gap_t)
      << what << ": measured tail rate " << rate << " decays far faster "
      << "than 1 - " << gap_t << "; the tail is not tracking lambda_min";
}

TEST(PolicyRateBound, UniformMatchesAvronBoundOnFd) {
  // FD 16x16 five-point Laplacian, symmetrically scaled to unit diagonal:
  // lambda_min(Â) = 1 - rho(G) ~= 0.0171, n = 256.
  const CsrMatrix ahat =
      scale_to_unit_diagonal(gen::fd_laplacian_2d(16, 16));
  expect_rate_matches_bound(ahat, test_seed(20), /*iters=*/400,
                            /*burn_in=*/100, 0.85, 2.5, "FD 16x16");
}

TEST(PolicyRateBound, UniformMatchesAvronBoundOnFe) {
  // Unstructured FE stiffness matrix (the paper's second matrix family),
  // scaled to unit diagonal. Small mesh so lambda_min stays moderate.
  gen::FeMeshOptions mesh;
  mesh.nx = 12;
  mesh.ny = 12;
  mesh.seed = test_seed(21);
  const CsrMatrix ahat =
      scale_to_unit_diagonal(gen::fe_laplacian_2d(mesh));
  expect_rate_matches_bound(ahat, test_seed(22), /*iters=*/500,
                            /*burn_in=*/150, 0.85, 2.5, "FE 12x12");
}

TEST(PolicyRateBound, UniformMatchesAvronBoundOnNonWdd) {
  // A = I - 0.52 * path adjacency: SPD (lambda_min ~= 0.002) but not
  // weakly diagonally dominant — interior rows have off-diagonal mass
  // 1.04 > 1 — so this sits outside the classical Jacobi comfort zone.
  // The randomized bound only needs SPD and still predicts the tail.
  const CsrMatrix ahat = ajac::testing::unit_diag_path(10, 0.52);
  expect_rate_matches_bound(ahat, test_seed(23), /*iters=*/4000,
                            /*burn_in=*/1000, 0.85, 2.5, "non-WDD path");
}

TEST(PolicyRateBound, UniformEndToEndRelaxationsWithinBound) {
  // Solver-level corollary: driving solve_shared with the uniform policy,
  // the relaxation count to reach tolerance tau must stay within a modest
  // constant of the bound's prediction (n / lambda_min) * ln(1/tau). A
  // broken sampler (e.g. one that kept re-drawing a subset of rows) would
  // either never converge or blow far past this budget.
  const auto p =
      gen::make_problem("fd", gen::fd_laplacian_2d(16, 16), test_seed(24));
  const CsrMatrix ahat = scale_to_unit_diagonal(p.a);
  const double lmin = lambda_min(ahat);
  const double n = static_cast<double>(p.a.num_rows());
  const double tau = 1e-8;

  SharedOptions o;
  o.num_threads = 1;
  o.tolerance = tau;
  o.max_iterations = 50000;
  o.record_history = false;
  o.final_polish = false;
  o.policy = RowPolicy::kUniformRandom;
  o.policy_seed = test_seed(25);
  const SharedResult r = solve_shared(p.a, p.b, p.x0, o);
  ASSERT_TRUE(r.converged);

  // ln(1/tau) iterations of energy halving-lives, times a factor-3 cushion
  // for the residual-norm / energy-norm conversion and the stopping check
  // granularity.
  const double budget = 3.0 * (n / lmin) * std::log(1.0 / tau);
  EXPECT_LE(static_cast<double>(r.total_relaxations), budget)
      << "uniform policy needed " << r.total_relaxations
      << " relaxations; the rate bound predicts ~"
      << (n / lmin) * std::log(1.0 / tau);
}

TEST(PolicyRateBound, WeightedBeatsNaturalOnSkewedResiduals) {
  // Residual weighting earns its keep when the residual stays skewed: a
  // block-diagonal system whose first 16 of 256 rows form a slow, nearly
  // indefinite tridiagonal block (off-diagonal 0.499: Jacobi rate ~0.991)
  // while the rest are strongly diagonally dominant and converge in a few
  // sweeps. Natural order keeps resweeping the long-converged fast block
  // (15/16 of every sweep is wasted); the weighted policy recomputes true
  // stencil-smoothed residual weights at each refresh, sees the fast block
  // at ~0, and concentrates all but the exploration floor on the slow
  // block — each slow row drawn ~n/n_slow times per iteration, with the
  // kWeightCap clamp spreading the draws across the whole hot block and
  // the smoothing keeping freshly-relaxed rows (whose residual regrows
  // mid-window) drawable. Relaxations-to-tolerance must beat natural by a
  // real margin, not by seed luck.
  const index_t n = 256;
  const index_t n_slow = 16;
  std::vector<index_t> row_ptr{0};
  std::vector<index_t> col_idx;
  std::vector<double> values;
  for (index_t i = 0; i < n; ++i) {
    const index_t block_lo = i < n_slow ? 0 : n_slow;
    const index_t block_hi = i < n_slow ? n_slow : n;
    const double off = i < n_slow ? -0.499 : -0.2;
    if (i > block_lo) {
      col_idx.push_back(i - 1);
      values.push_back(off);
    }
    col_idx.push_back(i);
    values.push_back(1.0);
    if (i + 1 < block_hi) {
      col_idx.push_back(i + 1);
      values.push_back(off);
    }
    row_ptr.push_back(static_cast<index_t>(col_idx.size()));
  }
  const CsrMatrix a(n, n, std::move(row_ptr), std::move(col_idx),
                    std::move(values));
  Vector b(static_cast<std::size_t>(n));
  Rng rng(test_seed(27));
  vec::fill_uniform(b, rng);
  const Vector x0(static_cast<std::size_t>(n), 0.0);

  SharedOptions o;
  o.num_threads = 1;
  o.tolerance = 1e-8;
  o.max_iterations = 50000;
  o.record_history = false;
  o.final_polish = false;
  o.policy_seed = test_seed(26);
  o.weight_refresh = 2;

  SharedOptions natural = o;
  natural.policy = RowPolicy::kNaturalOrder;
  const SharedResult rn = solve_shared(a, b, x0, natural);
  ASSERT_TRUE(rn.converged);

  SharedOptions weighted = o;
  weighted.policy = RowPolicy::kResidualWeighted;
  const SharedResult rw = solve_shared(a, b, x0, weighted);
  ASSERT_TRUE(rw.converged);

  // The measured win is ~10x; requiring 3x leaves room for seed-to-seed
  // variance while still catching any regression to parity (parity is
  // exactly what the raw-|r_i| weighting degrades to — see
  // row_policy.hpp on stencil smoothing).
  EXPECT_LE(rw.total_relaxations, rn.total_relaxations / 3)
      << "weighted " << rw.total_relaxations << " vs natural "
      << rn.total_relaxations;
}

}  // namespace
}  // namespace ajac::runtime
