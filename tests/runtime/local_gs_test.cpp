#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"

namespace ajac::runtime {
namespace {

TEST(LocalGaussSeidel, SingleThreadIsNaturalGaussSeidel) {
  // One thread owning everything + in-place sweep = sequential GS,
  // deterministic and bitwise comparable.
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(7, 6), 3);
  SharedOptions so;
  so.num_threads = 1;
  so.tolerance = 0.0;
  so.max_iterations = 15;
  so.record_history = false;
  so.local_gauss_seidel = true;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);

  solvers::SolveOptions ro;
  ro.tolerance = 0.0;
  ro.max_iterations = 15;
  const auto ref = solvers::gauss_seidel(p.a, p.b, p.x0, ro);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(r.x, ref.x), 0.0);
}

TEST(LocalGaussSeidel, ConvergesWithFewerRelaxationsThanJacobiSweep) {
  // Single-threaded so the comparison is deterministic (multi-threaded
  // relaxation counts vary with OS scheduling on oversubscribed cores;
  // the distsim InnerSweep tests cover the concurrent case).
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(12, 12), 5);
  SharedOptions base;
  base.num_threads = 1;
  base.tolerance = 1e-6;
  base.max_iterations = 1000000;
  base.record_history = false;

  SharedOptions gs = base;
  gs.local_gauss_seidel = true;
  const SharedResult r_gs = solve_shared(p.a, p.b, p.x0, gs);
  const SharedResult r_j = solve_shared(p.a, p.b, p.x0, base);
  ASSERT_TRUE(r_gs.converged);
  ASSERT_TRUE(r_j.converged);
  EXPECT_LT(r_gs.total_relaxations, r_j.total_relaxations);
}

TEST(LocalGaussSeidel, RejectedInSynchronousMode) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(4, 4), 7);
  SharedOptions so;
  so.num_threads = 2;
  so.synchronous = true;
  so.local_gauss_seidel = true;
  EXPECT_THROW(solve_shared(p.a, p.b, p.x0, so), std::logic_error);
}

TEST(LocalGaussSeidel, RejectedWithTraceRecording) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(4, 4), 9);
  SharedOptions so;
  so.num_threads = 2;
  so.record_trace = true;
  so.local_gauss_seidel = true;
  EXPECT_THROW(solve_shared(p.a, p.b, p.x0, so), std::logic_error);
}

}  // namespace
}  // namespace ajac::runtime
