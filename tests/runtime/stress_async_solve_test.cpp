// Concurrency stress harness for the full shared-memory Jacobi runtime
// (designed to run under ThreadSanitizer: `ctest --preset tsan`).
//
// Sweeps solve_shared across thread counts, modes (async, sync, local
// Gauss-Seidel, traced), and scheduler pressure (yield on/off, injected
// delays) — the configurations whose interleavings differ most. Each run
// verifies the solver's own postconditions, so this doubles as a
// correctness soak when run without instrumentation. Oversubscription is
// intentional: the host has fewer cores than the largest thread count, so
// threads get descheduled mid-iteration, which is exactly the regime the
// paper's termination discussion (Sec. VI) worries about.

#include "ajac/runtime/shared_jacobi.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/multi_vector.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "test_helpers.hpp"

namespace ajac::runtime {
namespace {

// Problem draws are salted off ajac::testing::test_seed(), so a failing
// configuration reproduces with AJAC_TEST_SEED=<logged value>.
gen::LinearProblem small_problem(std::uint64_t salt) {
  return gen::make_problem("fd", gen::fd_laplacian_2d(10, 10),
                           ajac::testing::test_seed(salt));
}

void verify_result(const gen::LinearProblem& p, const SharedResult& r,
                   double tolerance) {
  SCOPED_TRACE(::testing::Message()
               << "reproduce with AJAC_TEST_SEED="
               << ajac::testing::test_seed() << " (base seed)");
  EXPECT_TRUE(r.converged);
  Vector res(p.b.size());
  p.a.residual(r.x, p.b, res);
  Vector r0(p.b.size());
  p.a.residual(p.x0, p.b, r0);
  EXPECT_LE(vec::norm1(res) / vec::norm1(r0), tolerance * 1.5);
}

TEST(StressAsyncSolve, ThreadCountSweep) {
  const auto p = small_problem(31);
  for (index_t threads : {1, 2, 4, 8}) {
    SharedOptions so;
    so.num_threads = threads;
    so.tolerance = 1e-5;
    so.max_iterations = 200000;
    so.record_history = false;
    so.yield = true;  // fine-grained round-robin on oversubscribed hosts
    const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
    verify_result(p, r, so.tolerance);
  }
}

TEST(StressAsyncSolve, SynchronousBarrierSweep) {
  const auto p = small_problem(33);
  for (index_t threads : {2, 4}) {
    SharedOptions so;
    so.num_threads = threads;
    so.synchronous = true;
    so.tolerance = 1e-5;
    so.max_iterations = 20000;
    so.record_history = true;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
    verify_result(p, r, so.tolerance);
  }
}

TEST(StressAsyncSolve, LocalGaussSeidelUnderPressure) {
  const auto p = small_problem(35);
  SharedOptions so;
  so.num_threads = 4;
  so.local_gauss_seidel = true;
  so.tolerance = 1e-5;
  so.max_iterations = 200000;
  so.record_history = false;
  so.yield = true;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  verify_result(p, r, so.tolerance);
}

TEST(StressAsyncSolve, TracedSeqlockUnderPressure) {
  // Seqlock path exercised by every off-diagonal read of every
  // relaxation, with yields forcing retries.
  const auto p = small_problem(37);
  SharedOptions so;
  so.num_threads = 4;
  so.tolerance = 0.0;
  so.max_iterations = 30;
  so.record_trace = true;
  so.record_history = false;
  so.yield = true;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  ASSERT_TRUE(r.trace.has_value());
  const auto analysis = model::analyze_trace(*r.trace);
  EXPECT_EQ(analysis.total_relaxations, r.total_relaxations);
  EXPECT_EQ(analysis.orphaned, 0);
}

TEST(StressAsyncSolve, BlockedKernelThreadSweep) {
  // The default kernel is already Blocked; pin it explicitly so this test
  // keeps stressing the blocked path (private mirror + ghost reads + the
  // BlockedCsr constructor's own parallel first-touch fill) even if the
  // default ever changes. Oversubscribed + yield maximizes interleavings
  // of boundary-row ghost reads against neighbor commits under TSan.
  const auto p = small_problem(43);
  for (index_t threads : {1, 2, 4, 8}) {
    SharedOptions so;
    so.num_threads = threads;
    so.kernel = KernelKind::kBlocked;
    so.tolerance = 1e-5;
    so.max_iterations = 200000;
    so.record_history = false;
    so.yield = true;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
    verify_result(p, r, so.tolerance);
  }
}

TEST(StressAsyncSolve, ReferenceKernelStillSound) {
  // The reference path remains the differential-testing oracle; keep it
  // under the same TSan pressure as the blocked default.
  const auto p = small_problem(45);
  for (index_t threads : {2, 4}) {
    SharedOptions so;
    so.num_threads = threads;
    so.kernel = KernelKind::kReference;
    so.tolerance = 1e-5;
    so.max_iterations = 200000;
    so.record_history = false;
    so.yield = true;
    const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
    verify_result(p, r, so.tolerance);
  }
}

TEST(StressAsyncSolve, BlockedTracedSeqlockUnderPressure) {
  // Blocked + record_trace: ghost reads go through the versioned seqlock
  // while local reads bypass it via the mirror; the mirror's version
  // bookkeeping must agree with the seqlock's (analyze_trace would report
  // orphaned reads if a mirrored version never materialized).
  const auto p = small_problem(47);
  SharedOptions so;
  so.num_threads = 4;
  so.kernel = KernelKind::kBlocked;
  so.tolerance = 0.0;
  so.max_iterations = 30;
  so.record_trace = true;
  so.record_history = false;
  so.yield = true;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  ASSERT_TRUE(r.trace.has_value());
  const auto analysis = model::analyze_trace(*r.trace);
  EXPECT_EQ(analysis.total_relaxations, r.total_relaxations);
  EXPECT_EQ(analysis.orphaned, 0);
}

TEST(StressAsyncSolve, BlockedLocalGaussSeidelUnderPressure) {
  const auto p = small_problem(49);
  SharedOptions so;
  so.num_threads = 4;
  so.kernel = KernelKind::kBlocked;
  so.local_gauss_seidel = true;
  so.tolerance = 1e-5;
  so.max_iterations = 200000;
  so.record_history = false;
  so.yield = true;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  verify_result(p, r, so.tolerance);
}

TEST(StressAsyncSolve, StraggleredThreadsStillVerifyResidual) {
  const auto p = small_problem(39);
  SharedOptions so;
  so.num_threads = 4;
  so.tolerance = 1e-4;
  so.max_iterations = 200000;
  so.record_history = false;
  so.delay_us = {120.0, 0.0, 60.0, 0.0};  // two stragglers
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  verify_result(p, r, so.tolerance);
}

TEST(StressAsyncSolve, BatchSolveThreadSweep) {
  // Batched multi-RHS path under TSan pressure: the per-row seqlock of
  // SharedMultiVector publishes whole k-wide rows while neighbors read
  // them racily, and per-column verified stops flip at different times —
  // the interleavings the scalar stress tests cannot reach. Verifies each
  // column's postcondition like verify_result does for scalars.
  const auto p = small_problem(51);
  const index_t n = p.a.num_rows();
  const index_t k = 4;
  MultiVector b(n, k);
  MultiVector x0(n, k);
  for (index_t c = 0; c < k; ++c) {
    // Distinct per-column scalings so columns freeze at different
    // iterations (column convergence is scale-invariant only in exact
    // arithmetic; the offsets also shift x0 relative to the solution).
    const double s = 1.0 + 0.5 * static_cast<double>(c);
    for (index_t i = 0; i < n; ++i) {
      b(i, c) = s * p.b[static_cast<std::size_t>(i)];
      x0(i, c) = p.x0[static_cast<std::size_t>(i)] / s;
    }
  }
  Vector r0(p.b.size());
  for (index_t threads : {1, 2, 4, 8}) {
    for (const bool synchronous : {false, true}) {
      SharedOptions so;
      so.num_threads = threads;
      so.synchronous = synchronous;
      so.tolerance = 1e-5;
      so.max_iterations = synchronous ? 20000 : 200000;
      so.record_history = false;
      so.yield = true;
      const SharedBatchResult r = solve_shared_batch(p.a, b, x0, so);
      for (index_t c = 0; c < k; ++c) {
        SCOPED_TRACE(::testing::Message()
                     << threads << " threads, sync=" << synchronous
                     << ", column " << c << ", AJAC_TEST_SEED="
                     << ajac::testing::test_seed());
        EXPECT_TRUE(r.converged[static_cast<std::size_t>(c)]);
        Vector res(p.b.size());
        p.a.residual(r.x.column(c), b.column(c), res);
        p.a.residual(x0.column(c), b.column(c), r0);
        EXPECT_LE(vec::norm1(res) / vec::norm1(r0), so.tolerance * 1.5);
      }
    }
  }
}

TEST(StressAsyncSolve, BackToBackSolvesReuseThreadPool) {
  // OpenMP reuses pooled worker threads across parallel regions, docking
  // them on futexes between solves. This is the pattern where missing
  // fork/join happens-before edges (see ajac/util/annotate.hpp) show up,
  // so hammer several solves in one process.
  const auto p = small_problem(41);
  for (int round = 0; round < 5; ++round) {
    SharedOptions so;
    so.num_threads = 3;
    so.tolerance = 1e-4;
    so.max_iterations = 200000;
    so.record_history = (round % 2 == 0);
    const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
    verify_result(p, r, so.tolerance);
  }
}

}  // namespace
}  // namespace ajac::runtime
