// Observability contract of solve_shared: a null registry leaves the
// solver's results bitwise untouched, a live registry's counters agree
// with the SharedResult, and the exported timeline is valid Chrome
// trace-event JSON.

#include <gtest/gtest.h>

#include <cstdint>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/obs/json.hpp"
#include "ajac/obs/metrics.hpp"
#include "ajac/obs/trace_sink.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/vector_ops.hpp"

namespace ajac::runtime {
namespace {

gen::LinearProblem fd_problem(index_t nx, index_t ny, std::uint64_t seed) {
  return gen::make_problem("fd", gen::fd_laplacian_2d(nx, ny), seed);
}

std::uint64_t total(const obs::MetricsSnapshot& snap, obs::Counter c) {
  return snap.totals[static_cast<std::size_t>(c)];
}

const obs::Histogram& hist(const obs::MetricsSnapshot& snap, obs::Hist h) {
  return snap.histograms[static_cast<std::size_t>(h)];
}

TEST(SharedMetrics, NullRegistryResultIsBitwiseIdentical) {
  // Synchronous mode is deterministic, so instrumented and uninstrumented
  // runs must agree bit for bit — the metrics hooks may not perturb the
  // arithmetic.
  const auto p = fd_problem(10, 10, 3);
  SharedOptions base;
  base.num_threads = 4;
  base.synchronous = true;
  base.tolerance = 0.0;
  base.max_iterations = 40;
  const SharedResult plain = solve_shared(p.a, p.b, p.x0, base);

  SharedOptions instrumented = base;
  obs::MetricsRegistry reg;
  instrumented.metrics = &reg;
  const SharedResult observed = solve_shared(p.a, p.b, p.x0, instrumented);

  EXPECT_DOUBLE_EQ(vec::max_abs_diff(plain.x, observed.x), 0.0);
  EXPECT_EQ(plain.total_relaxations, observed.total_relaxations);
  EXPECT_EQ(plain.iterations_per_thread, observed.iterations_per_thread);
  EXPECT_EQ(plain.polish_sweeps, observed.polish_sweeps);
}

TEST(SharedMetrics, CountersAgreeWithSharedResult) {
  const auto p = fd_problem(12, 12, 5);
  SharedOptions so;
  so.num_threads = 3;
  so.tolerance = 0.0;
  so.max_iterations = 60;
  so.record_history = false;
  so.final_polish = false;
  so.yield = true;
  obs::MetricsRegistry reg;
  so.metrics = &reg;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.num_actors, 3);
  std::uint64_t iter_sum = 0;
  for (index_t it : r.iterations_per_thread) {
    iter_sum += static_cast<std::uint64_t>(it);
  }
  EXPECT_EQ(total(snap, obs::Counter::kIterations), iter_sum);
  EXPECT_EQ(total(snap, obs::Counter::kRelaxations),
            static_cast<std::uint64_t>(r.total_relaxations));
  // Per-actor iteration counts mirror iterations_per_thread exactly.
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(
        snap.per_actor[t][static_cast<std::size_t>(obs::Counter::kIterations)],
        static_cast<std::uint64_t>(r.iterations_per_thread[t]));
  }
  // Every thread finishes by raising its flag at least once.
  EXPECT_GE(total(snap, obs::Counter::kFlagRaises), 3u);
  // The iteration histogram saw every local iteration.
  EXPECT_EQ(hist(snap, obs::Hist::kIterationUs).count(), iter_sum);
}

TEST(SharedMetrics, RecordTracePopulatesStalenessHistogram) {
  const auto p = fd_problem(8, 8, 7);
  SharedOptions so;
  so.num_threads = 2;
  so.tolerance = 0.0;
  so.max_iterations = 30;
  so.record_history = false;
  so.record_trace = true;  // staleness needs the seqlock versions
  so.final_polish = false;
  so.yield = true;
  obs::MetricsRegistry reg;
  so.metrics = &reg;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  ASSERT_TRUE(r.trace.has_value());

  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::Histogram& staleness = hist(snap, obs::Hist::kReadStaleness);
  // One sample per cross-row read of a traced relaxation.
  EXPECT_GT(staleness.count(), 0u);
  // Staleness is measured in iterations; it can never exceed the cap.
  EXPECT_LE(staleness.max(), static_cast<std::uint64_t>(so.max_iterations));
}

TEST(SharedMetrics, TimelineExportsAsValidTraceJson) {
  const auto p = fd_problem(8, 8, 9);
  SharedOptions so;
  so.num_threads = 2;
  so.tolerance = 1e-5;
  so.max_iterations = 20000;
  so.record_history = false;
  so.yield = true;
  obs::MetricsRegistry reg;
  so.metrics = &reg;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  EXPECT_TRUE(r.converged);

  obs::TraceEventSink sink;
  sink.add_registry(reg, "solve_shared");
  EXPECT_GT(sink.num_events(), 0u);
  const obs::JsonValue doc = obs::parse_json(sink.to_json());
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // The timeline must contain iteration spans, a flag raise per thread,
  // and the whole-solve span.
  std::size_t iteration_spans = 0;
  std::size_t flag_raises = 0;
  std::size_t solve_spans = 0;
  for (const obs::JsonValue& e : events->array) {
    const std::string& name = e.find("name")->string;
    if (name == "iteration") ++iteration_spans;
    if (name == "flag_raise") ++flag_raises;
    if (name == "solve") ++solve_spans;
  }
  EXPECT_GT(iteration_spans, 0u);
  EXPECT_GE(flag_raises, 2u);
  EXPECT_EQ(solve_spans, 1u);
}

TEST(SharedMetrics, RegistryIsResetBetweenRuns) {
  // Synchronous mode: deterministic, so both runs do identical work.
  const auto p = fd_problem(6, 6, 11);
  SharedOptions so;
  so.num_threads = 2;
  so.synchronous = true;
  so.tolerance = 0.0;
  so.max_iterations = 10;
  so.record_history = false;
  so.final_polish = false;
  obs::MetricsRegistry reg;
  so.metrics = &reg;
  (void)solve_shared(p.a, p.b, p.x0, so);
  const std::uint64_t first =
      total(reg.snapshot(), obs::Counter::kIterations);
  (void)solve_shared(p.a, p.b, p.x0, so);
  const std::uint64_t second =
      total(reg.snapshot(), obs::Counter::kIterations);
  // Counts from the first run do not leak into the second.
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace ajac::runtime
