#include "ajac/runtime/shared_jacobi.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"

namespace ajac::runtime {
namespace {

gen::LinearProblem fd_problem(index_t nx, index_t ny, std::uint64_t seed) {
  return gen::make_problem("fd", gen::fd_laplacian_2d(nx, ny), seed);
}

TEST(SharedSync, BitwiseEqualsSequentialJacobi) {
  // With barriers the shared-memory run is deterministic Jacobi: same
  // summation order per row, so results are bitwise identical.
  const auto p = fd_problem(10, 10, 3);
  SharedOptions so;
  so.num_threads = 4;
  so.synchronous = true;
  so.tolerance = 0.0;
  so.max_iterations = 40;
  so.record_history = false;
  const SharedResult shared = solve_shared(p.a, p.b, p.x0, so);

  solvers::SolveOptions ro;
  ro.tolerance = 0.0;
  ro.max_iterations = 40;
  const auto ref = solvers::jacobi(p.a, p.b, p.x0, ro);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(shared.x, ref.x), 0.0);
  for (index_t it : shared.iterations_per_thread) EXPECT_EQ(it, 40);
}

TEST(SharedAsync, ConvergesAndVerifiesResidual) {
  const auto p = fd_problem(12, 12, 5);
  SharedOptions so;
  so.num_threads = 4;
  so.synchronous = false;
  so.tolerance = 1e-6;
  so.max_iterations = 200000;
  so.record_history = false;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.final_rel_residual_1, 1e-6 * 1.5);
  // Cross-check with an independent residual computation.
  Vector res(p.b.size());
  p.a.residual(r.x, p.b, res);
  Vector r0(p.b.size());
  p.a.residual(p.x0, p.b, r0);
  EXPECT_LE(vec::norm1(res) / vec::norm1(r0), 1e-6 * 1.5);
}

TEST(SharedAsync, IterationCapStopsEveryThread) {
  const auto p = fd_problem(8, 8, 7);
  SharedOptions so;
  so.num_threads = 3;
  so.tolerance = 0.0;  // disabled: pure iteration-count mode (Fig. 5(b))
  so.max_iterations = 50;
  so.record_history = false;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  for (index_t it : r.iterations_per_thread) EXPECT_GE(it, 50);
  EXPECT_GE(r.total_relaxations, 50 * p.a.num_rows());
}

TEST(SharedAsync, SingleThreadEqualsSequential) {
  const auto p = fd_problem(6, 6, 9);
  SharedOptions so;
  so.num_threads = 1;
  so.tolerance = 0.0;
  so.max_iterations = 30;
  so.record_history = false;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  solvers::SolveOptions ro;
  ro.tolerance = 0.0;
  ro.max_iterations = 30;
  const auto ref = solvers::jacobi(p.a, p.b, p.x0, ro);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(r.x, ref.x), 0.0);
}

TEST(SharedAsync, HistoryIsTimeOrdered) {
  const auto p = fd_problem(8, 8, 11);
  SharedOptions so;
  so.num_threads = 2;
  so.tolerance = 1e-4;
  so.max_iterations = 100000;
  so.record_history = true;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  ASSERT_FALSE(r.history.empty());
  for (std::size_t k = 1; k < r.history.size(); ++k) {
    EXPECT_GE(r.history[k].seconds, r.history[k - 1].seconds);
  }
}

TEST(SharedAsync, DelayInjectionSlowsDelayedThread) {
  const auto p = fd_problem(8, 8, 13);
  SharedOptions so;
  so.num_threads = 2;
  so.tolerance = 1e-6;
  so.max_iterations = 2000000;
  so.record_history = false;
  so.delay_us = {1000.0, 0.0};  // thread 0 sleeps 1ms per iteration
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  // The solve stops by convergence, far below the iteration cap (the
  // delay and tolerance are sized so not even the free thread can reach
  // it and park): thread 1 runs free while thread 0 crawls, so it relaxes
  // its rows many more times before the verified stop fires.
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.iterations_per_thread[1], r.iterations_per_thread[0]);
}

TEST(SharedAsync, IterationCapIsExactDespiteDelay) {
  // With tolerance 0 every thread must park at the cap rather than run
  // past it while stragglers catch up: the executed (thread, iteration)
  // set is exactly [0, max_iterations) per thread, independent of how
  // lopsided the schedule is.
  const auto p = fd_problem(8, 8, 13);
  SharedOptions so;
  so.num_threads = 2;
  so.tolerance = 0.0;
  so.max_iterations = 25;
  so.record_history = false;
  so.delay_us = {400.0, 0.0};
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  EXPECT_EQ(r.iterations_per_thread[0], 25);
  EXPECT_EQ(r.iterations_per_thread[1], 25);
}

TEST(SharedSync, DelayThrottlesEveryone) {
  // With barriers all threads match the delayed thread's pace exactly:
  // equal iteration counts.
  const auto p = fd_problem(6, 6, 15);
  SharedOptions so;
  so.num_threads = 2;
  so.synchronous = true;
  so.tolerance = 0.0;
  so.max_iterations = 10;
  so.record_history = false;
  so.delay_us = {300.0, 0.0};
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  EXPECT_EQ(r.iterations_per_thread[0], r.iterations_per_thread[1]);
}

TEST(SharedAsync, TraceRecordsEveryRelaxation) {
  const auto p = fd_problem(5, 4, 17);
  SharedOptions so;
  so.num_threads = 2;
  so.tolerance = 0.0;
  so.max_iterations = 10;
  so.record_trace = true;
  so.record_history = false;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_EQ(static_cast<index_t>(r.trace->events().size()),
            r.total_relaxations);
  // Every event's reads are off-diagonal pattern entries of its row.
  for (const auto& e : r.trace->events()) {
    EXPECT_EQ(static_cast<index_t>(e.reads.size()),
              p.a.row_nnz(e.row) - 1);
  }
}

TEST(SharedAsync, TraceIsAnalyzable) {
  const auto p = fd_problem(5, 4, 19);
  SharedOptions so;
  so.num_threads = 4;
  so.tolerance = 0.0;
  so.max_iterations = 15;
  so.record_trace = true;
  so.record_history = false;
  so.yield = true;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  ASSERT_TRUE(r.trace.has_value());
  const auto analysis = model::analyze_trace(*r.trace);
  EXPECT_EQ(analysis.total_relaxations, r.total_relaxations);
  EXPECT_EQ(analysis.orphaned, 0);
  EXPECT_GT(analysis.fraction, 0.0);
}

TEST(SharedOptions, CustomPartitionIsRespected) {
  const auto p = fd_problem(6, 6, 21);
  SharedOptions so;
  so.num_threads = 2;
  so.tolerance = 0.0;
  so.max_iterations = 5;
  so.record_history = false;
  partition::Partition part;
  part.block_starts = {0, 30, 36};  // deliberately unbalanced
  so.partition = part;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  EXPECT_GE(r.total_relaxations, 5 * 36);
}

TEST(SharedOptions, Validation) {
  const auto p = fd_problem(4, 4, 23);
  SharedOptions so;
  so.num_threads = 2;
  so.delay_us = {1.0};  // wrong length
  EXPECT_THROW(solve_shared(p.a, p.b, p.x0, so), std::logic_error);
}

}  // namespace
}  // namespace ajac::runtime
