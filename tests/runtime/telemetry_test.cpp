// End-to-end telemetry through the real solvers: the streaming-off path is
// bitwise identical to streaming-on (the hooks must observe, never
// perturb), the monitor's rho-hat converges to the Jacobi spectral radius
// on the synchronous path, the straggler detector catches an injected
// distsim straggler (and stays quiet on a clean run), and the NDJSON
// stream of a fixed deterministic run matches a committed golden file.
//
// Golden regeneration, after an intentional stream-format change:
//
//   AJAC_REGEN_GOLDEN=1 ./ajac_test_runtime --gtest_filter='TelemetryGolden.*'
//
// rewrites tests/runtime/golden/ in the source tree (the run still asserts
// afterwards). Commit the diff deliberately.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/eig/power.hpp"
#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/obs/monitor.hpp"
#include "ajac/obs/stream.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/multi_vector.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac::runtime {
namespace {

gen::LinearProblem fd_problem(index_t nx, index_t ny, std::uint64_t salt) {
  return gen::make_problem("fd", gen::fd_laplacian_2d(nx, ny),
                           ajac::testing::test_seed(salt));
}

void expect_bitwise_equal(const Vector& got, const Vector& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << "bit pattern diverged at row " << i;
  }
}

// ---------------------------------------------------------------------------
// Streaming off vs on: bitwise identity
// ---------------------------------------------------------------------------

TEST(TelemetryShared, StreamingOnIsBitwiseIdenticalSync) {
  const auto p = fd_problem(10, 10, 21);
  SharedOptions so;
  so.num_threads = 4;
  so.synchronous = true;
  so.tolerance = 0.0;
  so.max_iterations = 40;
  so.record_history = false;
  const SharedResult off = solve_shared(p.a, p.b, p.x0, so);

  obs::TelemetryOptions topts;
  topts.max_actors = so.num_threads;
  topts.beacon_stride = 1;
  obs::TelemetryHub hub(topts);
  so.stream = &hub;
  const SharedResult on = solve_shared(p.a, p.b, p.x0, so);

  expect_bitwise_equal(on.x, off.x);
  EXPECT_EQ(on.total_relaxations, off.total_relaxations);
  // The hub really was fed: every thread published at least its per-
  // iteration beacons plus the final one.
  std::uint64_t published = 0;
  for (index_t t = 0; t < so.num_threads; ++t) {
    published += hub.ring(t).published();
  }
  EXPECT_GE(published, static_cast<std::uint64_t>(so.num_threads) * 40);
}

TEST(TelemetryShared, StreamingOnIsBitwiseIdenticalAsyncSingleThread) {
  const auto p = fd_problem(8, 8, 22);
  SharedOptions so;
  so.num_threads = 1;
  so.synchronous = false;
  so.tolerance = 0.0;
  so.max_iterations = 30;
  so.record_history = false;
  const SharedResult off = solve_shared(p.a, p.b, p.x0, so);

  obs::TelemetryHub hub;
  so.stream = &hub;
  const SharedResult on = solve_shared(p.a, p.b, p.x0, so);
  expect_bitwise_equal(on.x, off.x);
  EXPECT_GT(hub.ring(0).published(), 0u);
}

TEST(TelemetryBatch, StreamingOnIsBitwiseIdentical) {
  const CsrMatrix a = gen::fd_laplacian_2d(9, 9);
  const index_t n = a.num_rows();
  constexpr index_t kCols = 3;
  MultiVector b(n, kCols);
  MultiVector x0(n, kCols);
  Rng rng(ajac::testing::test_seed(23));
  for (index_t c = 0; c < kCols; ++c) {
    for (index_t i = 0; i < n; ++i) b(i, c) = rng.uniform(-1.0, 1.0);
    for (index_t i = 0; i < n; ++i) x0(i, c) = rng.uniform(-1.0, 1.0);
  }
  SharedOptions so;
  so.num_threads = 2;
  so.synchronous = true;
  so.tolerance = 0.0;
  so.max_iterations = 35;
  so.record_history = false;
  const SharedBatchResult off = solve_shared_batch(a, b, x0, so);

  obs::TelemetryOptions topts;
  topts.max_actors = so.num_threads;
  obs::TelemetryHub hub(topts);
  so.stream = &hub;
  const SharedBatchResult on = solve_shared_batch(a, b, x0, so);

  for (index_t c = 0; c < kCols; ++c) {
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(on.x(i, c)),
                std::bit_cast<std::uint64_t>(off.x(i, c)))
          << "col " << c << " row " << i;
    }
  }
  EXPECT_GT(hub.ring(0).published(), 0u);
}

TEST(TelemetryDist, StreamingOnIsBitwiseIdenticalWithEqualSimTime) {
  const auto p = fd_problem(12, 12, 24);
  const auto part = partition::contiguous_partition(144, 4);
  distsim::DistOptions o;
  o.num_processes = 4;
  o.max_iterations = 400;
  o.tolerance = 0.0;
  o.seed = ajac::testing::test_seed(24);
  const distsim::DistResult off =
      distsim::solve_distributed(p.a, p.b, p.x0, part, o);

  obs::TelemetryOptions topts;
  topts.max_actors = 4;
  topts.beacon_stride = 1;
  obs::TelemetryHub hub(topts);
  o.stream = &hub;
  const distsim::DistResult on =
      distsim::solve_distributed(p.a, p.b, p.x0, part, o);

  expect_bitwise_equal(on.x, off.x);
  // Publishing must not advance simulated time either.
  EXPECT_EQ(on.sim_seconds, off.sim_seconds);
  EXPECT_EQ(on.total_relaxations, off.total_relaxations);
}

// ---------------------------------------------------------------------------
// rho-hat vs the Jacobi spectral radius (synchronous path)
// ---------------------------------------------------------------------------

void check_rho_hat(const CsrMatrix& a, std::uint64_t salt) {
  const auto p = gen::make_problem("rho", a, ajac::testing::test_seed(salt));
  SharedOptions so;
  so.num_threads = 2;
  so.synchronous = true;
  so.tolerance = 0.0;
  so.max_iterations = 200;
  so.record_history = false;

  obs::TelemetryOptions topts;
  topts.max_actors = so.num_threads;
  topts.beacon_stride = 1;
  topts.ring_capacity = 512;  // the whole run fits: no drops, exact points
  obs::TelemetryHub hub(topts);
  obs::ConvergenceMonitor monitor(hub);
  so.stream = &hub;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  ASSERT_GT(r.total_relaxations, 0);
  monitor.flush();

  // On the synchronous path every frontier point is the exact global
  // residual of its iteration, so the windowed regression recovers the
  // asymptotic per-iteration contraction — the Jacobi spectral radius.
  const double rho = eig::spectral_radius_jacobi(p.a);
  const obs::MonitorEstimates est = monitor.estimates();
  EXPECT_EQ(est.dropped, 0u);
  EXPECT_EQ(est.iteration_min, 200);
  ASSERT_GT(est.rho_hat, 0.0);
  EXPECT_NEAR(est.rho_hat, rho, 2e-2 * rho);
}

TEST(TelemetryShared, RhoHatMatchesSpectralRadiusFd) {
  check_rho_hat(gen::fd_laplacian_2d(16, 16), 31);
}

TEST(TelemetryShared, RhoHatMatchesSpectralRadiusFe) {
  gen::FeMeshOptions fe;
  fe.nx = 8;
  fe.ny = 8;
  fe.seed = ajac::testing::test_seed(32);
  check_rho_hat(gen::fe_laplacian_2d(fe), 32);
}

// ---------------------------------------------------------------------------
// Straggler detection through the simulator's fault plan
// ---------------------------------------------------------------------------

distsim::DistOptions dist_base(std::uint64_t salt) {
  distsim::DistOptions o;
  o.num_processes = 4;
  // Oracle-tolerance stop, not the iteration cap: the whole simulation
  // halts at one sim instant, so no rank parks early and reads as
  // stalled while the rest keep publishing (the documented iteration-cap
  // artifact — see the monitor's header notes).
  o.max_iterations = 100000;
  o.tolerance = 1e-5;
  o.seed = ajac::testing::test_seed(salt);
  return o;
}

obs::MonitorEstimates run_dist_with_monitor(const distsim::DistOptions& o,
                                            std::uint64_t salt) {
  const auto p = fd_problem(12, 12, salt);
  const auto part = partition::contiguous_partition(144, 4);
  obs::TelemetryOptions topts;
  topts.max_actors = 4;
  topts.beacon_stride = 1;
  topts.ring_capacity = 2048;  // whole run buffered: one post-run flush
  obs::TelemetryHub hub(topts);
  obs::ConvergenceMonitor::Options mopts;
  // ~5-6 simulated us per local iteration (CostModel::iteration_overhead
  // dominates at 36 rows/rank): 60-us windows hold ~10 healthy
  // iterations, plenty against the 8x-slowed straggler.
  mopts.window_us = 60.0;
  obs::ConvergenceMonitor monitor(hub, mopts);
  distsim::DistOptions opts = o;
  opts.stream = &hub;
  const distsim::DistResult r =
      distsim::solve_distributed(p.a, p.b, p.x0, part, opts);
  EXPECT_GT(r.total_relaxations, 0);
  monitor.flush();
  return monitor.estimates();
}

TEST(TelemetryDist, InjectedStragglerIsFlagged) {
  auto o = dist_base(41);
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = o.seed;
  fault::StragglerSpec spec;
  spec.actor = 2;
  spec.delay_factor = 8.0;  // permanent 8x slowdown (duty = 1)
  spec.duty = 1.0;
  plan->stragglers.push_back(spec);
  o.fault_plan = plan;

  const obs::MonitorEstimates est = run_dist_with_monitor(o, 41);
  ASSERT_EQ(est.stragglers.size(), 1u);
  const obs::StragglerFlag& flag = est.stragglers[0];
  EXPECT_EQ(flag.actor, 2);
  EXPECT_LT(flag.rate, 0.25 * flag.median_rate);
  // Detected while the run was still going, not just at its end, and
  // within a bounded number of windows of the start (the slowdown is
  // permanent, so detection needs only arming + the 3-window streak).
  EXPECT_GT(flag.detected_ts_us, 0.0);
  EXPECT_LT(flag.detected_ts_us, est.ts_us);
  EXPECT_LE(flag.detected_ts_us, 20 * 60.0);
  // The straggler is the iteration-frontier laggard too.
  EXPECT_GT(est.iteration_imbalance, 0.5);
}

TEST(TelemetryDist, CleanRunRaisesNoFlags) {
  const obs::MonitorEstimates est = run_dist_with_monitor(dist_base(42), 42);
  EXPECT_TRUE(est.stragglers.empty());
  EXPECT_EQ(est.actors_reporting, 4);
  EXPECT_GT(est.beacons, 0u);
}

// ---------------------------------------------------------------------------
// Golden NDJSON stream
// ---------------------------------------------------------------------------

// Fixed on purpose: the golden pins one exact execution, AJAC_TEST_SEED
// must not move it.
constexpr std::uint64_t kGoldenSeed = 4242;

std::string golden_path(const std::string& name) {
  return std::string(AJAC_GOLDEN_DIR) + "/" + name;
}

bool regen_requested() {
  const char* env = std::getenv("AJAC_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with AJAC_REGEN_GOLDEN=1)";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
  out << content;
}

TEST(TelemetryGolden, NdjsonStreamOfDeterministicRunIsByteStable) {
  // Single-threaded synchronous fixed-iteration run: every published
  // value is a pure function of the problem, and zero_timestamps removes
  // the only wall-clock field, so the whole NDJSON stream is byte-stable
  // (%.17g doubles round-trip exactly).
  const auto p =
      gen::make_problem("fd16", gen::fd_laplacian_2d(16, 16), kGoldenSeed);
  SharedOptions so;
  so.num_threads = 1;
  so.synchronous = true;
  so.tolerance = 0.0;
  so.max_iterations = 24;
  so.record_history = false;

  obs::TelemetryOptions topts;
  topts.max_actors = 1;
  topts.beacon_stride = 8;
  obs::TelemetryHub hub(topts);
  obs::ConvergenceMonitor monitor(hub);
  std::ostringstream stream;
  obs::NdjsonSink::Options sopts;
  sopts.zero_timestamps = true;
  obs::NdjsonSink sink(stream, sopts);
  monitor.add_sink(&sink);

  so.stream = &hub;
  const SharedResult r = solve_shared(p.a, p.b, p.x0, so);
  ASSERT_GT(r.total_relaxations, 0);
  monitor.flush();

  const std::string got = stream.str();
  ASSERT_FALSE(got.empty());
  const std::string path = golden_path("telemetry_fd16.ndjson");
  if (regen_requested()) write_file(path, got);
  EXPECT_EQ(got, read_file(path))
      << "telemetry NDJSON drifted (regenerate with AJAC_REGEN_GOLDEN=1)";
}

}  // namespace
}  // namespace ajac::runtime
