#!/usr/bin/env python3
"""Gate the blocked kernels' throughput from a bench_kernels JSON report.

Reads a google-benchmark JSON file (produced by `bench_kernels --json ...`)
and compares the partition-aware blocked asynchronous solve against the
reference one on the 256x256 FD Laplacian:

    BM_SolveSharedAsync/256/real_time    (KernelKind::kReference)
    BM_SolveSharedBlocked/256/real_time  (KernelKind::kBlocked)

The blocked run must reach at least --min-speedup times the reference's
items_per_second (default 1.0: the blocked default may never be slower than
the reference oracle), minus a small noise allowance. Throughput comes from
the *median* over --benchmark_repetitions, not the mean — on shared CI
runners a single descheduled repetition drags the mean far below steady
state, while the median shrugs it off — and --noise-tolerance-pct (default
3) relaxes the floor by the residual run-to-run jitter two medians still
carry. Exit status: 0 ok, 1 too slow or benchmarks missing, 2 bad input.

Usage: tools/check_kernel_speedup.py report.json [--min-speedup 1.0]
"""

import argparse
import json
import statistics
import sys

REFERENCE = "BM_SolveSharedAsync/256/real_time"
BLOCKED = "BM_SolveSharedBlocked/256/real_time"


def items_per_second(report: dict, name: str) -> float:
    # With --benchmark_repetitions the report carries one entry per
    # repetition plus aggregates. Prefer the median aggregate; otherwise
    # compute the median of the repetition entries ourselves (also covers
    # the single-run case, where the median of one value is that value).
    rates = []
    for bench in report.get("benchmarks", []):
        run_name = bench.get("run_name", bench.get("name"))
        if run_name != name:
            continue
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        if bench.get("aggregate_name") == "median":
            return float(rate)
        if bench.get("run_type", "iteration") == "iteration":
            rates.append(float(rate))
    if not rates:
        raise KeyError(name)
    return statistics.median(rates)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="bench_kernels --json output file")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="minimum blocked/reference throughput ratio")
    parser.add_argument("--noise-tolerance-pct", type=float, default=3.0,
                        help="run-to-run jitter allowance subtracted from "
                             "the floor, in percent")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_kernel_speedup: cannot read {args.report}: {e}",
              file=sys.stderr)
        return 2

    try:
        ref = items_per_second(report, REFERENCE)
        blk = items_per_second(report, BLOCKED)
    except KeyError as e:
        print(f"check_kernel_speedup: benchmark {e} missing from report "
              f"(run bench_kernels without a filter excluding SolveShared)",
              file=sys.stderr)
        return 1

    if ref <= 0:
        print("check_kernel_speedup: reference items_per_second is zero",
              file=sys.stderr)
        return 2

    speedup = blk / ref
    floor = args.min_speedup * (1.0 - args.noise_tolerance_pct / 100.0)
    verdict = "OK" if speedup >= floor else "FAIL"
    print(f"check_kernel_speedup: {verdict} — "
          f"reference {ref:,.0f} items/s, blocked {blk:,.0f} items/s, "
          f"speedup {speedup:.3f}x (floor {args.min_speedup}x "
          f"- {args.noise_tolerance_pct}% noise = {floor:.3f}x)")
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
