#!/usr/bin/env python3
"""Gate the blocked kernels' throughput from a benchmark JSON report.

Two modes, one per report schema:

Default (google-benchmark JSON, from `bench_kernels --json ...`): compares
the partition-aware blocked asynchronous solve against the reference one
on the 256x256 FD Laplacian:

    BM_SolveSharedAsync/256/real_time    (KernelKind::kReference)
    BM_SolveSharedBlocked/256/real_time  (KernelKind::kBlocked)

The blocked run must reach at least --min-speedup times the reference's
items_per_second (default 1.0: the blocked default may never be slower than
the reference oracle), minus a small noise allowance. Throughput comes from
the *median* over --benchmark_repetitions, not the mean — on shared CI
runners a single descheduled repetition drags the mean far below steady
state, while the median shrugs it off — and --noise-tolerance-pct (default
3) relaxes the floor by the residual run-to-run jitter two medians still
carry.

--scale (ajac-bench-report JSON, from `bench_scale --json ...`): reads the
"scale" table, picks the largest fd2 problem it benched (CI runs
--edge 2048, local runs default to 4096), and gates the large-n ordering
the bandwidth work promises, on mrows_per_s:

    blocked                    >= reference x --min-speedup
    best of sellcs/sellcs-fp32 >= blocked   x --min-new-speedup

bench_scale already reports medians over --reps, so the rows are used
directly; the same --noise-tolerance-pct allowance applies to both floors.

Exit status: 0 ok, 1 too slow or benchmarks missing, 2 bad input.

Usage: tools/check_kernel_speedup.py report.json [--min-speedup 1.0]
       tools/check_kernel_speedup.py scale.json --scale [--min-new-speedup 1.0]
"""

import argparse
import json
import statistics
import sys

REFERENCE = "BM_SolveSharedAsync/256/real_time"
BLOCKED = "BM_SolveSharedBlocked/256/real_time"

SCALE_NEW_KERNELS = ("sellcs", "sellcs-fp32")


def items_per_second(report: dict, name: str) -> float:
    # With --benchmark_repetitions the report carries one entry per
    # repetition plus aggregates. Prefer the median aggregate; otherwise
    # compute the median of the repetition entries ourselves (also covers
    # the single-run case, where the median of one value is that value).
    rates = []
    for bench in report.get("benchmarks", []):
        run_name = bench.get("run_name", bench.get("name"))
        if run_name != name:
            continue
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        if bench.get("aggregate_name") == "median":
            return float(rate)
        if bench.get("run_type", "iteration") == "iteration":
            rates.append(float(rate))
    if not rates:
        raise KeyError(name)
    return statistics.median(rates)


def gate(label: str, actual: float, base: float, min_speedup: float,
         noise_pct: float) -> bool:
    """Print one comparison line; True when actual/base clears the floor."""
    speedup = actual / base
    floor = min_speedup * (1.0 - noise_pct / 100.0)
    ok = speedup >= floor
    print(f"check_kernel_speedup: {'OK' if ok else 'FAIL'} — {label}: "
          f"{speedup:.3f}x (floor {min_speedup}x - {noise_pct}% noise "
          f"= {floor:.3f}x)")
    return ok


def check_scale(report: dict, args) -> int:
    """Gate the bench_scale table (see module docstring, --scale mode)."""
    table = report.get("tables", {}).get("scale")
    if table is None:
        print("check_kernel_speedup: no 'scale' table in report "
              "(is this a bench_scale --json file?)", file=sys.stderr)
        return 1
    columns = table.get("columns", [])
    try:
        key_col = columns.index("problem/kernel")
        n_col = columns.index("n")
        rate_col = columns.index("mrows_per_s")
    except ValueError as e:
        print(f"check_kernel_speedup: scale table column missing: {e}",
              file=sys.stderr)
        return 2

    # kernel -> mrows_per_s for the largest fd2 problem in the table.
    by_problem: dict = {}
    for row in table.get("rows", []):
        key = str(row[key_col])
        if "/" not in key or not key.startswith("fd2-"):
            continue
        problem, kernel = key.rsplit("/", 1)
        by_problem.setdefault(problem, {"n": row[n_col], "rates": {}})
        by_problem[problem]["rates"][kernel] = float(row[rate_col])
    if not by_problem:
        print("check_kernel_speedup: no fd2 rows in the scale table",
              file=sys.stderr)
        return 1
    problem = max(by_problem, key=lambda p: by_problem[p]["n"])
    rates = by_problem[problem]["rates"]

    missing = [k for k in ("reference", "blocked", *SCALE_NEW_KERNELS)
               if k not in rates]
    if missing:
        print(f"check_kernel_speedup: kernels {missing} missing from "
              f"{problem} (run bench_scale with all kernels)",
              file=sys.stderr)
        return 1

    best_new = max(SCALE_NEW_KERNELS, key=lambda k: rates[k])
    print(f"check_kernel_speedup: {problem} "
          f"(n={by_problem[problem]['n']:,}): " +
          ", ".join(f"{k} {rates[k]:.1f} Mrows/s"
                    for k in ("reference", "blocked", *SCALE_NEW_KERNELS)))
    ok = gate("blocked vs reference", rates["blocked"], rates["reference"],
              args.min_speedup, args.noise_tolerance_pct)
    ok &= gate(f"{best_new} vs blocked", rates[best_new], rates["blocked"],
               args.min_new_speedup, args.noise_tolerance_pct)
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="benchmark --json output file")
    parser.add_argument("--scale", action="store_true",
                        help="gate a bench_scale ajac-bench-report instead "
                             "of a bench_kernels google-benchmark report")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="minimum blocked/reference throughput ratio")
    parser.add_argument("--min-new-speedup", type=float, default=1.0,
                        help="--scale only: minimum best-of-sellcs/blocked "
                             "throughput ratio")
    parser.add_argument("--noise-tolerance-pct", type=float, default=3.0,
                        help="run-to-run jitter allowance subtracted from "
                             "the floor, in percent")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_kernel_speedup: cannot read {args.report}: {e}",
              file=sys.stderr)
        return 2

    if args.scale:
        return check_scale(report, args)

    try:
        ref = items_per_second(report, REFERENCE)
        blk = items_per_second(report, BLOCKED)
    except KeyError as e:
        print(f"check_kernel_speedup: benchmark {e} missing from report "
              f"(run bench_kernels without a filter excluding SolveShared)",
              file=sys.stderr)
        return 1

    if ref <= 0:
        print("check_kernel_speedup: reference items_per_second is zero",
              file=sys.stderr)
        return 2

    print(f"check_kernel_speedup: reference {ref:,.0f} items/s, "
          f"blocked {blk:,.0f} items/s")
    ok = gate("blocked vs reference", blk, ref, args.min_speedup,
              args.noise_tolerance_pct)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
