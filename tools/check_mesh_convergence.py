#!/usr/bin/env python3
"""Gate the mesh runtime's convergence against the distsim prediction.

Reads an ajac-bench-report JSON file (produced by `bench_mesh --json ...`)
and checks, for every swept agent count at or above --min-agents, that

  * the asynchronous mesh converged, and
  * its iteration count is at most --max-iteration-factor times the
    discrete-event simulator's prediction for the same partition.

The factor defaults to 3.0. That is deliberately loose: on a quiet
multi-core host the mesh with yield enabled typically needs *fewer*
iterations than distsim predicts (fine-grained interleaving gives later
agents same-sweep data, a Gauss-Seidel flavor), so the observed ratio sits
near or below 1. The slack absorbs oversubscribed CI runners, where the OS
scheduler — not the algorithm — decides how stale boundary values get. A
ratio beyond 3 means information is not propagating through the queues at
all (e.g. agents spinning on frozen ghosts), which is the failure mode
this gate exists to catch.

Counts below --min-agents (default 4) are reported but not gated: with 1-2
agents the mesh is nearly sequential and the ratio says little about
message passing.

Exit status: 0 ok, 1 gate violated or table missing, 2 bad input.

Usage: tools/check_mesh_convergence.py report.json [--max-iteration-factor 3.0]
"""

import argparse
import json
import sys

TABLE = "mesh_vs_distsim"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="bench_mesh --json output file")
    parser.add_argument("--max-iteration-factor", type=float, default=3.0,
                        help="maximum mesh/distsim iteration ratio at "
                             "gated agent counts (default 3.0)")
    parser.add_argument("--min-agents", type=int, default=4,
                        help="gate only rows with at least this many "
                             "agents (default 4)")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_mesh_convergence: cannot read {args.report}: {e}",
              file=sys.stderr)
        return 2

    if report.get("kind") != "ajac-bench-report":
        print(f"check_mesh_convergence: {args.report} is not an "
              f"ajac-bench-report (kind={report.get('kind')!r})",
              file=sys.stderr)
        return 2
    table = report.get("tables", {}).get(TABLE)
    if table is None:
        print(f"check_mesh_convergence: table '{TABLE}' missing from "
              f"report (run bench_mesh --json)", file=sys.stderr)
        return 1

    columns = table.get("columns", [])
    try:
        col = {name: columns.index(name) for name in
               ("agents", "distsim iters", "mesh iters", "mesh converged")}
    except ValueError as e:
        print(f"check_mesh_convergence: unexpected columns {columns}: {e}",
              file=sys.stderr)
        return 2

    status = 0
    gated_rows = 0
    for row in table.get("rows", []):
        agents = int(row[col["agents"]])
        dist_iters = int(row[col["distsim iters"]])
        mesh_iters = int(row[col["mesh iters"]])
        converged = str(row[col["mesh converged"]]) == "yes"
        ratio = mesh_iters / max(dist_iters, 1)
        gated = agents >= args.min_agents
        if gated:
            gated_rows += 1
        ok = (not gated) or (converged and
                             ratio <= args.max_iteration_factor)
        verdict = "OK" if ok else "FAIL"
        note = "" if gated else " (informational)"
        print(f"check_mesh_convergence: {verdict} [{agents} agents] — "
              f"distsim {dist_iters}, mesh {mesh_iters}, "
              f"ratio {ratio:.3f} (budget {args.max_iteration_factor}), "
              f"converged {'yes' if converged else 'NO'}{note}")
        if not ok:
            status = 1

    if gated_rows == 0:
        print(f"check_mesh_convergence: no rows with agents >= "
              f"{args.min_agents} to gate", file=sys.stderr)
        return 1
    return status


if __name__ == "__main__":
    sys.exit(main())
