#!/usr/bin/env python3
"""Gate the batched path's amortization from a bench_kernels JSON report.

Reads a google-benchmark JSON file (produced by `bench_kernels --json ...`)
and compares aggregate row-update throughput (rows x k per iteration, so
items_per_second is directly comparable across batch widths) of the k=8
batched solve against the k=1 run of the same code path on the 256x256 FD
Laplacian:

    BM_SolveSharedBatch/256/1/real_time   (batch path, single column)
    BM_SolveSharedBatch/256/8/real_time   (batch path, eight columns)

Because both runs execute the same batch machinery, the ratio isolates what
batching is for: each CSR gather (column index + matrix value) is reused k
times, and the unit-stride inner loops over the batch dimension vectorize.
The k=8 run must reach at least --min-ratio times the k=1 throughput
(default 2.0), minus --noise-tolerance-pct (default 3) of jitter allowance.
Throughput is the median over --benchmark_repetitions (see
check_kernel_speedup.py for why median, not mean). Exit status: 0 ok,
1 too slow or benchmarks missing, 2 bad input.

Usage: tools/check_batch_throughput.py report.json [--min-ratio 2.0]
"""

import argparse
import json
import statistics
import sys

SINGLE = "BM_SolveSharedBatch/256/1/real_time"
BATCHED = "BM_SolveSharedBatch/256/8/real_time"


def items_per_second(report: dict, name: str) -> float:
    # With --benchmark_repetitions the report carries one entry per
    # repetition plus aggregates. Prefer the median aggregate; otherwise
    # compute the median of the repetition entries ourselves (also covers
    # the single-run case).
    rates = []
    for bench in report.get("benchmarks", []):
        run_name = bench.get("run_name", bench.get("name"))
        if run_name != name:
            continue
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        if bench.get("aggregate_name") == "median":
            return float(rate)
        if bench.get("run_type", "iteration") == "iteration":
            rates.append(float(rate))
    if not rates:
        raise KeyError(name)
    return statistics.median(rates)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="bench_kernels --json output file")
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="minimum k=8 / k=1 row-update throughput ratio")
    parser.add_argument("--noise-tolerance-pct", type=float, default=3.0,
                        help="run-to-run jitter allowance subtracted from "
                             "the floor, in percent")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_batch_throughput: cannot read {args.report}: {e}",
              file=sys.stderr)
        return 2

    try:
        single = items_per_second(report, SINGLE)
        batched = items_per_second(report, BATCHED)
    except KeyError as e:
        print(f"check_batch_throughput: benchmark {e} missing from report "
              f"(run bench_kernels without a filter excluding SolveShared)",
              file=sys.stderr)
        return 1

    if single <= 0:
        print("check_batch_throughput: k=1 items_per_second is zero",
              file=sys.stderr)
        return 2

    ratio = batched / single
    floor = args.min_ratio * (1.0 - args.noise_tolerance_pct / 100.0)
    verdict = "OK" if ratio >= floor else "FAIL"
    print(f"check_batch_throughput: {verdict} — "
          f"k=1 {single:,.0f} row-updates/s, k=8 {batched:,.0f} "
          f"row-updates/s, ratio {ratio:.3f}x (floor {args.min_ratio}x "
          f"- {args.noise_tolerance_pct}% noise = {floor:.3f}x)")
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
