#!/usr/bin/env python3
"""Diff two benchmark JSON reports entry by entry.

Accepts two report schemas, detected per file:

  * google-benchmark JSON (bench_kernels --json): entries are paired by
    run_name and compared on the median real_time (and items_per_second
    when both carry it).
  * ajac-bench-report JSON (the table benches: bench_fig2, bench_faults,
    bench_policies, bench_mesh --json): every numeric cell becomes an
    entry named `table[row-key].column` (row key = first column), and the
    cell value is compared directly — for these the value columns are raw
    table numbers (iterations, counts, ms), not nanoseconds.

So a CI run can show the performance trend against the committed baseline:

    tools/compare_bench.py BENCH_baseline.json fresh.json

Medians, not means: with --benchmark_repetitions the report carries one
entry per repetition plus aggregates; a single descheduled repetition on a
shared runner drags the mean far below steady state while the median
shrugs it off (same convention as check_kernel_speedup.py). Deltas within
--noise-tolerance-pct are labeled '~' (noise); larger ones '+' (faster) or
'-' (slower).

By default the comparison is informational and always exits 0 — trends
need a human eye because baselines go stale (different machine, different
load). With --gate-regression-pct N it exits 1 when any paired benchmark's
median real_time regressed by more than N percent.

Exit status: 0 ok, 1 gated regression, 2 bad input / nothing to compare.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def load_table_report(report: dict) -> dict[str, dict[str, float]]:
    """ajac-bench-report tables flattened to `table[row-key].column`.

    Each numeric cell maps to a single 'real_time' sample so the delta
    machinery below applies unchanged; the docstring's caveat about raw
    table numbers applies. Rows are keyed by their first column, which
    every table bench uses as the sweep variable (size, agents, ...).
    """
    out: dict[str, dict[str, float]] = {}
    for tname, table in report.get("tables", {}).items():
        columns = table.get("columns", [])
        for row in table.get("rows", []):
            if not row:
                continue
            key = str(row[0])
            for idx, cell in enumerate(row[1:], start=1):
                if not isinstance(cell, (int, float)):
                    continue
                name = f"{tname}[{key}].{columns[idx]}"
                out[name] = {"real_time": float(cell)}
    return out


def load_medians(path: str) -> dict[str, dict[str, float]]:
    """run_name -> {metric: median} for real_time and items_per_second."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    if report.get("kind") == "ajac-bench-report":
        return load_table_report(report)
    samples: dict[str, dict[str, list[float]]] = {}
    aggregates: dict[str, dict[str, float]] = {}
    for bench in report.get("benchmarks", []):
        run_name = bench.get("run_name", bench.get("name"))
        if run_name is None:
            continue
        for metric in ("real_time", "items_per_second"):
            value = bench.get(metric)
            if value is None:
                continue
            if bench.get("aggregate_name") == "median":
                aggregates.setdefault(run_name, {})[metric] = float(value)
            elif bench.get("run_type", "iteration") == "iteration":
                samples.setdefault(run_name, {}).setdefault(
                    metric, []
                ).append(float(value))
    out: dict[str, dict[str, float]] = {}
    for run_name, metrics in samples.items():
        out[run_name] = {
            m: statistics.median(vs) for m, vs in metrics.items()
        }
    for run_name, metrics in aggregates.items():
        out.setdefault(run_name, {}).update(metrics)  # aggregate wins
    return out


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", help="reference report (older)")
    parser.add_argument("candidate", help="report to compare against it")
    parser.add_argument("--noise-tolerance-pct", type=float, default=3.0,
                        help="|delta| at or below this is labeled noise "
                             "(default 3)")
    parser.add_argument("--gate-regression-pct", type=float, default=None,
                        help="exit 1 if any real_time median regresses by "
                             "more than this percent (default: report only)")
    args = parser.parse_args()

    base = load_medians(args.baseline)
    cand = load_medians(args.candidate)
    common = sorted(set(base) & set(cand))
    if not common:
        print("error: no benchmarks in common", file=sys.stderr)
        return 2

    print(f"baseline:  {args.baseline}")
    print(f"candidate: {args.candidate}")
    # "value" is median real_time ns for google-benchmark entries and the
    # raw table cell for ajac-bench-report entries.
    print(f"{'benchmark':<48} {'base value':>12} {'cand value':>12} "
          f"{'delta':>8}  {'thpt':>8}")
    worst = 0.0
    worst_name = ""
    for name in common:
        b = base[name].get("real_time")
        c = cand[name].get("real_time")
        if b is None or c is None or b <= 0:
            continue
        delta_pct = 100.0 * (c - b) / b
        # real_time up = slower. Label by the noise tolerance.
        if abs(delta_pct) <= args.noise_tolerance_pct:
            label = "~"
        else:
            label = "-" if delta_pct > 0 else "+"
        thpt = ""
        bt = base[name].get("items_per_second")
        ct = cand[name].get("items_per_second")
        if bt and ct:
            thpt = f"{100.0 * (ct - bt) / bt:+7.1f}%"
        print(f"{name:<48} {b:>12.6g} {c:>12.6g} "
              f"{delta_pct:>+7.1f}{label} {thpt:>8}")
        if delta_pct > worst:
            worst = delta_pct
            worst_name = name
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"only in baseline:  {', '.join(only_base)}")
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand)}")

    if args.gate_regression_pct is not None and worst > args.gate_regression_pct:
        print(f"FAIL: {worst_name} regressed {worst:.1f}% "
              f"(> {args.gate_regression_pct:.1f}% allowed)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
