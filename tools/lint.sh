#!/usr/bin/env bash
# Repo lint: mechanical hygiene rules clang-tidy cannot express, the
# concurrency-contract auditor (tools/analyze/ajac_audit.py), and a
# clang-tidy pass when the binary and a compile database are available.
#
# Shell rules (each greppable, each with a rationale):
#   fence-ban        std::atomic_thread_fence only inside ajac/util/annotate.hpp.
#                    The seqlock and runtime use per-element acquire/release
#                    orderings so ThreadSanitizer can model them; a raw fence
#                    reintroduces synchronization TSan silently ignores.
#   tsan-raw-ban     __tsan_* / Annotate* calls only via the AJAC_TSAN_*
#                    wrappers in annotate.hpp, so every escape from the
#                    memory model is recorded in one reviewable file.
#   pragma-once      every header starts its preprocessor life with #pragma once.
#   no-using-std     no file-scope `using namespace std`.
#   checked-entry    public solver/runtime entry points validate their inputs:
#                    each listed translation unit must contain AJAC_CHECK (or
#                    an explicit validation throw, as in the IO parsers).
#
# The auditor carries the concurrency-contract rules (racy-ok tags on
# relaxed atomics, atomic/seqlock/omp scoping) plus include-hygiene and
# clock-ban, which migrated there from this script; run
# `tools/analyze/ajac_audit.py --list-rules` for the catalogue and
# `--explain <rule>` for any rule's contract.
#
# Usage: tools/lint.sh [--build-dir <dir>] [--require-clang-tidy]
# (run from the repo root). --require-clang-tidy turns a missing
# clang-tidy binary or compile database into a failure instead of a
# skip — CI's static-analysis job sets it so the tidy pass can never
# silently stop running.
# Exit status: 0 clean, 1 violations found.

set -u

BUILD_DIR=""
REQUIRE_TIDY=0
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="${2:-}"; shift 2 ;;
    --require-clang-tidy) REQUIRE_TIDY=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."

FAILURES=0
fail() {
  echo "lint: $1" >&2
  shift
  for line in "$@"; do echo "    $line" >&2; done
  FAILURES=$((FAILURES + 1))
}

# Source sets. Committed sources only; build trees are never linted, and
# the auditor's golden fixtures are intentionally rule-breaking inputs.
mapfile -t ALL_SOURCES < <(find src tests bench examples \
  \( -name '*.cpp' -o -name '*.hpp' \) -type f \
  -not -path 'tests/tools/fixtures/*' | sort)
mapfile -t ALL_HEADERS < <(find src tests bench examples \
  -name '*.hpp' -type f -not -path 'tests/tools/fixtures/*' | sort)

# --- fence-ban -------------------------------------------------------------
# Comment lines may mention the fence (to explain why it is banned).
HITS=$(grep -n 'atomic_thread_fence' "${ALL_SOURCES[@]}" \
  | grep -vE '^[^:]+:[0-9]+:[[:space:]]*(//|\*)' \
  | grep -v '^src/util/include/ajac/util/annotate\.hpp:' \
  | grep -v 'lint:allow-fence' || true)
if [ -n "$HITS" ]; then
  fail "raw std::atomic_thread_fence outside ajac/util/annotate.hpp (use per-element acquire/release orderings; TSan does not model fences):" "$HITS"
fi

# --- tsan-raw-ban ----------------------------------------------------------
HITS=$(grep -nE '__tsan_|AnnotateHappensBefore|AnnotateHappensAfter|AnnotateBenignRace' \
  "${ALL_SOURCES[@]}" \
  | grep -vE '^[^:]+:[0-9]+:[[:space:]]*(//|\*)' \
  | grep -v '^src/util/include/ajac/util/annotate\.hpp:' || true)
if [ -n "$HITS" ]; then
  fail "raw TSan interface call outside ajac/util/annotate.hpp (use the AJAC_TSAN_* wrappers):" "$HITS"
fi

# --- pragma-once -----------------------------------------------------------
for h in "${ALL_HEADERS[@]}"; do
  if [ "$(grep -m1 '^#' "$h")" != "#pragma once" ]; then
    fail "header does not start with #pragma once: $h"
  fi
done

# --- no-using-std ----------------------------------------------------------
HITS=$(grep -n '^using namespace std' "${ALL_SOURCES[@]}" || true)
if [ -n "$HITS" ]; then
  fail "file-scope 'using namespace std':" "$HITS"
fi

# --- checked-entry ---------------------------------------------------------
# Translation units implementing public API entry points (exported solver /
# runtime / IO functions callable with externally produced data). Each must
# validate its inputs with AJAC_CHECK. Extend this list when adding an
# entry-point TU.
ENTRY_POINTS=(
  src/runtime/shared_jacobi.cpp
  src/runtime/shared_batch.cpp
  src/solvers/stationary.cpp
  src/solvers/krylov.cpp
  src/distsim/dist_jacobi.cpp
  src/distsim/local_block.cpp
  src/sparse/csr.cpp
  src/sparse/coo.cpp
  src/sparse/mm_io.cpp
  src/partition/partition.cpp
  src/core/ajac.cpp
)
for tu in "${ENTRY_POINTS[@]}"; do
  if [ ! -f "$tu" ]; then
    fail "checked-entry list names a missing file (update tools/lint.sh): $tu"
  elif ! grep -qE 'AJAC_CHECK|throw std::' "$tu"; then
    fail "public entry-point TU has no input validation (AJAC_CHECK or explicit throw): $tu"
  fi
done

# --- concurrency-contract auditor ------------------------------------------
echo "lint: running tools/analyze/ajac_audit.py ..."
if ! python3 tools/analyze/ajac_audit.py; then
  FAILURES=$((FAILURES + 1))
fi

# --- clang-tidy ------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  DB=""
  if [ -n "$BUILD_DIR" ] && [ -f "$BUILD_DIR/compile_commands.json" ]; then
    DB="$BUILD_DIR"
  elif [ -f build/compile_commands.json ]; then
    DB=build
  fi
  if [ -n "$DB" ]; then
    echo "lint: running clang-tidy (database: $DB) ..."
    mapfile -t TIDY_SOURCES < <(find src -name '*.cpp' -type f | sort)
    if ! clang-tidy -p "$DB" --quiet "${TIDY_SOURCES[@]}"; then
      FAILURES=$((FAILURES + 1))
    fi
  elif [ "$REQUIRE_TIDY" -eq 1 ]; then
    fail "--require-clang-tidy: no compile_commands.json (configure with cmake -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first)"
  else
    echo "lint: clang-tidy found but no compile_commands.json (configure with cmake first); skipping tidy pass"
  fi
elif [ "$REQUIRE_TIDY" -eq 1 ]; then
  fail "--require-clang-tidy: clang-tidy not installed"
else
  echo "lint: clang-tidy not installed; running grep-based rules only"
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "lint: FAILED ($FAILURES rule(s) violated)" >&2
  exit 1
fi
echo "lint: OK"
