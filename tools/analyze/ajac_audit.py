#!/usr/bin/env python3
"""ajac_audit: concurrency-contract static analysis for the ajac tree.

The C++ type system cannot express this repo's concurrency discipline —
"every relaxed atomic access is individually justified", "the seqlock
counters are only touched through the protocol methods", "raw atomics
live in the three modules whose job is synchronization" — and clang-tidy
has no checks for them either. This auditor closes that gap with a small
set of mechanical, greppable rules over the committed sources. It is
dependency-free (Python stdlib only) and is invoked by tools/lint.sh as
well as directly:

    tools/analyze/ajac_audit.py                 # audit the whole tree
    tools/analyze/ajac_audit.py src/runtime     # audit a subtree
    tools/analyze/ajac_audit.py --explain racy-ok-tag
    tools/analyze/ajac_audit.py --json          # machine-readable findings
    tools/analyze/ajac_audit.py --list-rules

Exit status: 0 clean, 1 findings, 2 usage/configuration error.

The racy-ok contract
--------------------
Every `std::memory_order_relaxed` access must carry a justification
comment on the same line or within the three lines above it:

    // racy-ok(<tag>): <why this relaxed access is correct>

where <tag> names a justification *category* registered in
tools/analyze/racy_ok.toml (the manifest). The tag makes justifications
greppable by kind — `grep -rn 'racy-ok(seqlock-open)'` lists every
seqlock-opening store in the tree — and the manifest forces each new
category through review: an unregistered tag is a finding, so inventing
a category means editing a file whose diff a reviewer will see.

Fixture support
---------------
Files may carry a `// audit-as: <path>` directive in their first ten
lines; path-scoped rules (atomic-scope, omp-allowlist, seqlock-protocol,
clock-ban) then treat the file as if it lived at <path>. This lets the
golden fixtures under tests/tools/fixtures/ exercise rules that only
fire in particular subtrees. The fixtures directory itself is skipped
when walking directories (its files are intentionally bad) but is
audited when a fixture file is passed as an explicit argument.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - container ships 3.11
    tomllib = None

REPO_MARKERS = ("CMakeLists.txt", ".git")
SOURCE_SUFFIXES = {".cpp", ".hpp"}
DEFAULT_ROOTS = ("src", "tests", "bench", "examples")
FIXTURE_DIR = Path("tests/tools/fixtures")
MANIFEST_NAME = "racy_ok.toml"

# How far above a relaxed access its racy-ok comment may sit. Three lines
# covers a wrapped comment plus a wrapped statement without letting one
# comment silently bless an unrelated access further down.
RACY_OK_WINDOW = 3

RACY_OK_RE = re.compile(r"racy-ok\(([A-Za-z0-9_-]+)\):\s*(\S.*)?")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
AUDIT_AS_RE = re.compile(r"audit-as:\s*(\S+)")
ALLOW_CLOCK_RE = re.compile(r"lint:allow-clock")

# ---------------------------------------------------------------------------
# Rule registry. Each rule's `explain` text is the canonical statement of
# the contract it enforces; `--explain <id>` prints it verbatim.
# ---------------------------------------------------------------------------

RULES: dict[str, str] = {
    "racy-ok-tag": """\
Every `std::memory_order_relaxed` access must carry a justification:

    // racy-ok(<tag>): <reason>

on the same line or within the three lines directly above the access.
Relaxed ordering is the single most dangerous tool in the tree — it is
what makes the paper's racy reads legal C++, and it is also what turns a
forgotten release into a silent reordering bug. The tag names a reviewed
justification category (see tools/analyze/racy_ok.toml); the reason says
why THIS access needs no ordering. An access with neither is either
unreviewed or wrong — the auditor cannot tell which, so it flags it.

Fix: add the comment, picking the registered tag that matches the
justification (run with --explain racy-ok-unknown-tag for the tag list),
or strengthen the ordering if the access actually publishes data.""",
    "racy-ok-unknown-tag": """\
The tag inside `racy-ok(<tag>):` must be registered in
tools/analyze/racy_ok.toml. Tags are justification *categories* — e.g.
`init` (single-threaded setup before the fork), `seqlock-open` (the
writer's own counter, which only it mutates), `intended-race` (the
paper's deliberate racy read/write). Registration keeps the category
list short and reviewed: a new kind of relaxed-access justification must
be added to the manifest, where its definition gets review, instead of
being minted ad hoc at a call site.

Fix: use an existing tag if one fits; otherwise add a `[tags.<name>]`
entry with a `summary` to the manifest in the same change.""",
    "racy-ok-orphan": """\
A `racy-ok(...)` comment must be followed by a `memory_order_relaxed`
access on its own line or within the three lines below it. An orphaned
justification usually means the access it blessed was edited away or
strengthened — leaving a comment that will silently re-attach itself to
the next relaxed access someone writes nearby, justifying it with a
rationale written for different code.

Fix: delete the stale comment (or move it back next to its access).""",
    "atomic-scope": """\
Raw `std::atomic` may only appear under src/runtime, src/obs, and
src/fault (plus the wrapper machinery in ajac/util/annotate.hpp). Those
are the modules whose *job* is cross-thread communication; everywhere
else in src/ an atomic is a red flag that synchronization is leaking
into single-threaded code — the sparse kernels, generators, solvers and
models are all sequential by contract, and an atomic there either lies
about concurrency that does not exist or quietly introduces concurrency
the runtime layer does not know about. Tests and bench code are exempt
(they legitimately build small concurrent harnesses).

Fix: move the shared state into a runtime/obs/fault type, or pass it in
from the runtime layer instead of declaring it locally.""",
    "seqlock-protocol": """\
The seqlock sequence counters (identifiers containing `seq`) may only be
loaded or stored inside the protocol headers:
ajac/runtime/shared_vector.hpp, ajac/runtime/shared_multi_vector.hpp and
ajac/obs/event_ring.hpp (the telemetry ring's per-slot seqlock).
The seqlock's correctness is a whole-protocol property — the odd/even
discipline, the acquire/release pairing, the single-writer invariant —
and a counter access outside the protocol methods can break it in ways
no local inspection will catch (e.g. an innocent-looking `seq.load` used
to "peek" at a version without the retry loop). Everyone else uses the
public API: read(), read_versioned(), write(), version() — or, for the
event ring, publish() and poll().

Fix: route the access through the protocol methods, or extend the
protocol header if the operation is genuinely new.""",
    "omp-allowlist": """\
`#pragma omp` is restricted to the runtime layer (src/runtime/**), the
benchmark harness (bench/**), and the four sparse kernels with internal
parallel loops (src/sparse/csr.cpp, src/sparse/multi_vector.cpp,
src/sparse/blocked_csr.cpp, src/sparse/sell_csr.cpp — the last two
first-touch their hot arrays on the threads that will relax them).
Thread creation is an architectural event
in this codebase: the runtime owns the fork/join structure that the
fault injector, the metrics registry, and the termination protocol are
all built around. An OpenMP region anywhere else creates threads those
subsystems do not know exist — fault plans will not cover them, metrics
slots will not be sized for them, and the solver's determinism
arguments quietly stop holding.

Fix: hoist the parallelism into the runtime layer, or add the file to
the allowlist in a reviewed change if it is genuinely a new kernel.""",
    "include-hygiene": """\
Project headers are included as `"ajac/<module>/<name>.hpp"` — never by
a relative path (`"../foo.hpp"`), and never with angle brackets
(`<ajac/...>`). Relative includes resolve against the including file's
location, so moving either file silently changes what gets included;
module-qualified quoted includes break loudly at build time instead.
Angle brackets tell the preprocessor to search system directories
first, which can shadow the in-tree header with a stale installed copy.

Fix: include the header as "ajac/<module>/<name>.hpp".""",
    "clock-ban": """\
Raw std::chrono clock reads (`steady_clock::now` etc.) are only allowed
in ajac/util/timer.hpp and under src/obs. Everywhere else timestamps
must flow through WallTimer, for two reasons: instrumented and
uninstrumented runs must read the clock at the same call sites (or
enabling metrics perturbs the schedule being measured), and the distsim
runs on *simulated* time — a wall-clock read inside it is a category
error that compiles fine. A deliberate exception is marked with a
`lint:allow-clock` comment on the offending line.

Fix: take a WallTimer (or a time parameter) instead of reading the
clock inline.""",
}

# Path scopes (matched against the *effective* path, honoring audit-as).
ATOMIC_ALLOWED_PREFIXES = (
    "src/runtime/",
    "src/obs/",
    "src/fault/",
    "src/mesh/",
)
ATOMIC_ALLOWED_FILES = ("src/util/include/ajac/util/annotate.hpp",)
SEQLOCK_ALLOWED_FILES = (
    "src/runtime/include/ajac/runtime/shared_vector.hpp",
    "src/runtime/include/ajac/runtime/shared_multi_vector.hpp",
    "src/obs/include/ajac/obs/event_ring.hpp",
)
OMP_ALLOWED_PREFIXES = ("src/runtime/", "bench/")
OMP_ALLOWED_FILES = (
    "src/sparse/csr.cpp",
    "src/sparse/multi_vector.cpp",
    "src/sparse/blocked_csr.cpp",
    "src/sparse/sell_csr.cpp",
)
CLOCK_ALLOWED_PREFIXES = ("src/obs/",)
CLOCK_ALLOWED_FILES = ("src/util/include/ajac/util/timer.hpp",)

ATOMIC_RE = re.compile(r"\bstd\s*::\s*atomic\b")
SEQ_ACCESS_RE = re.compile(r"\b[A-Za-z_]*seq[A-Za-z_0-9]*(?:\[[^\]]*\])?\s*\.\s*(?:load|store|exchange|compare_exchange\w*)\s*\(")
OMP_RE = re.compile(r"^\s*#\s*pragma\s+omp\b")
CLOCK_RE = re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b")
REL_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"\.\./')
ANGLE_INCLUDE_RE = re.compile(r"^\s*#\s*include\s+<ajac/")


@dataclass
class Finding:
    rule: str
    file: str
    line: int  # 1-based
    message: str
    snippet: str

    def text(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}\n    {self.snippet.strip()}"

    def as_json(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet.strip(),
        }


@dataclass
class SourceLine:
    """One physical line split into code and comment text."""

    code: str
    comment: str


def split_comments(text: str) -> list[SourceLine]:
    """Split each line of a C++ source into (code, comment) halves.

    A line-oriented scanner tracking block comments and string/char
    literals. Raw strings are handled well enough for this tree (no rule
    pattern legitimately appears inside one); preprocessor continuations
    are treated as independent lines, which is fine for pattern rules.
    """
    lines: list[SourceLine] = []
    in_block = False
    for raw in text.split("\n"):
        code_parts: list[str] = []
        comment_parts: list[str] = []
        i, n = 0, len(raw)
        in_string: str | None = None  # the quote character, when inside
        while i < n:
            c = raw[i]
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    comment_parts.append(raw[i:])
                    i = n
                else:
                    comment_parts.append(raw[i:end])
                    i = end + 2
                    in_block = False
                continue
            if in_string:
                code_parts.append(c)
                if c == "\\" and i + 1 < n:
                    code_parts.append(raw[i + 1])
                    i += 2
                    continue
                if c == in_string:
                    in_string = None
                i += 1
                continue
            if c in "\"'":
                in_string = c
                code_parts.append(c)
                i += 1
                continue
            if c == "/" and i + 1 < n and raw[i + 1] == "/":
                comment_parts.append(raw[i + 2 :])
                i = n
                continue
            if c == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block = True
                i += 2
                continue
            code_parts.append(c)
            i += 1
        # An unterminated string literal never spans lines in valid C++;
        # reset so one bad fixture line cannot poison the rest of a file.
        in_string = None
        lines.append(SourceLine("".join(code_parts), "".join(comment_parts)))
    return lines


@dataclass
class AuditFile:
    path: Path  # real path on disk
    effective: str  # repo-relative path used for scoping (audit-as aware)
    raw_lines: list[str]
    lines: list[SourceLine]


def load_file(path: Path, repo_root: Path) -> AuditFile:
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = split_comments(text)
    try:
        effective = path.resolve().relative_to(repo_root).as_posix()
    except ValueError:
        effective = path.as_posix()
    for sl in lines[:10]:
        m = AUDIT_AS_RE.search(sl.comment)
        if m:
            effective = m.group(1)
            break
    return AuditFile(path, effective, text.split("\n"), lines)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def check_racy_ok(f: AuditFile, tags: dict[str, str], out: list[Finding]) -> None:
    display = f.path.as_posix()
    # Pass 1: collect racy-ok comments and relaxed accesses by line index.
    comments: dict[int, tuple[str, str | None]] = {}
    accesses: list[int] = []
    for idx, sl in enumerate(f.lines):
        m = RACY_OK_RE.search(sl.comment)
        if m:
            comments[idx] = (m.group(1), m.group(2))
        if RELAXED_RE.search(sl.code):
            accesses.append(idx)

    claimed: set[int] = set()
    for idx in accesses:
        # Same line, or within RACY_OK_WINDOW *code* lines above: blank and
        # comment-only lines (a wrapped justification) do not consume the
        # window, so a two-line comment over a wrapped statement still
        # reaches its access. A single comment may bless several
        # consecutive accesses (e.g. a tagged loop whose body spans two
        # lines), so claimed comments stay usable inside the window.
        found = None
        budget = RACY_OK_WINDOW
        j = idx
        while j >= 0 and budget >= 0:
            if j in comments:
                found = j
                break
            if f.lines[j].code.strip():
                budget -= 1
            j -= 1
        if found is None:
            out.append(
                Finding(
                    "racy-ok-tag",
                    display,
                    idx + 1,
                    "memory_order_relaxed without a racy-ok(<tag>) justification",
                    f.raw_lines[idx],
                )
            )
            continue
        claimed.add(found)
        tag, reason = comments[found]
        if tag not in tags:
            known = ", ".join(sorted(tags)) or "<manifest empty>"
            out.append(
                Finding(
                    "racy-ok-unknown-tag",
                    display,
                    found + 1,
                    f"tag '{tag}' is not registered in {MANIFEST_NAME} (known: {known})",
                    f.raw_lines[found],
                )
            )
        elif not reason:
            out.append(
                Finding(
                    "racy-ok-tag",
                    display,
                    found + 1,
                    "racy-ok tag has no reason text after the colon",
                    f.raw_lines[found],
                )
            )

    for idx, (tag, _) in comments.items():
        if idx in claimed:
            continue
        # Orphan check: no relaxed access within the window of code lines
        # below (mirroring the upward search: comment-only and blank lines
        # do not consume the window).
        hit = False
        budget = RACY_OK_WINDOW
        j = idx
        while j < len(f.lines) and budget >= 0:
            if RELAXED_RE.search(f.lines[j].code):
                hit = True
                break
            if f.lines[j].code.strip():
                budget -= 1
            j += 1
        if not hit:
            out.append(
                Finding(
                    "racy-ok-orphan",
                    display,
                    idx + 1,
                    f"racy-ok({tag}) comment with no memory_order_relaxed access "
                    f"within {RACY_OK_WINDOW} lines below",
                    f.raw_lines[idx],
                )
            )


def _scoped(effective: str, prefixes: tuple[str, ...], files: tuple[str, ...]) -> bool:
    return effective.startswith(prefixes) or effective in files


def check_atomic_scope(f: AuditFile, out: list[Finding]) -> None:
    if not f.effective.startswith("src/"):
        return
    if _scoped(f.effective, ATOMIC_ALLOWED_PREFIXES, ATOMIC_ALLOWED_FILES):
        return
    for idx, sl in enumerate(f.lines):
        if ATOMIC_RE.search(sl.code):
            out.append(
                Finding(
                    "atomic-scope",
                    f.path.as_posix(),
                    idx + 1,
                    "raw std::atomic outside src/runtime, src/obs, src/fault "
                    f"(file scoped as {f.effective})",
                    f.raw_lines[idx],
                )
            )


def check_seqlock_protocol(f: AuditFile, out: list[Finding]) -> None:
    if not f.effective.startswith("src/"):
        return
    if f.effective in SEQLOCK_ALLOWED_FILES:
        return
    for idx, sl in enumerate(f.lines):
        if SEQ_ACCESS_RE.search(sl.code):
            out.append(
                Finding(
                    "seqlock-protocol",
                    f.path.as_posix(),
                    idx + 1,
                    "seqlock counter accessed outside the protocol headers "
                    "(use read()/read_versioned()/write()/version())",
                    f.raw_lines[idx],
                )
            )


def check_omp_allowlist(f: AuditFile, out: list[Finding]) -> None:
    if _scoped(f.effective, OMP_ALLOWED_PREFIXES, OMP_ALLOWED_FILES):
        return
    for idx, sl in enumerate(f.lines):
        if OMP_RE.search(sl.code):
            out.append(
                Finding(
                    "omp-allowlist",
                    f.path.as_posix(),
                    idx + 1,
                    "#pragma omp outside the runtime/bench/sparse-kernel allowlist "
                    f"(file scoped as {f.effective})",
                    f.raw_lines[idx],
                )
            )


def check_include_hygiene(f: AuditFile, out: list[Finding]) -> None:
    for idx, sl in enumerate(f.lines):
        if REL_INCLUDE_RE.search(sl.code):
            out.append(
                Finding(
                    "include-hygiene",
                    f.path.as_posix(),
                    idx + 1,
                    'relative #include "../..." '
                    '(address project headers as "ajac/<module>/<name>.hpp")',
                    f.raw_lines[idx],
                )
            )
        elif ANGLE_INCLUDE_RE.search(sl.code):
            out.append(
                Finding(
                    "include-hygiene",
                    f.path.as_posix(),
                    idx + 1,
                    "project header included with angle brackets (use quotes)",
                    f.raw_lines[idx],
                )
            )


def check_clock_ban(f: AuditFile, out: list[Finding]) -> None:
    if _scoped(f.effective, CLOCK_ALLOWED_PREFIXES, CLOCK_ALLOWED_FILES):
        return
    for idx, sl in enumerate(f.lines):
        if CLOCK_RE.search(sl.code) and not ALLOW_CLOCK_RE.search(sl.comment):
            out.append(
                Finding(
                    "clock-ban",
                    f.path.as_posix(),
                    idx + 1,
                    "raw std::chrono clock read outside ajac/util/timer.hpp and "
                    "src/obs (use WallTimer, or mark lint:allow-clock)",
                    f.raw_lines[idx],
                )
            )


def audit_file(f: AuditFile, tags: dict[str, str]) -> list[Finding]:
    out: list[Finding] = []
    check_racy_ok(f, tags, out)
    check_atomic_scope(f, out)
    check_seqlock_protocol(f, out)
    check_omp_allowlist(f, out)
    check_include_hygiene(f, out)
    check_clock_ban(f, out)
    return out


# ---------------------------------------------------------------------------
# Manifest + file discovery
# ---------------------------------------------------------------------------


def load_manifest(path: Path) -> dict[str, str]:
    """Load the racy-ok tag manifest: {tag: summary}."""
    if not path.is_file():
        raise SystemExit(f"ajac_audit: manifest not found: {path}")
    data = path.read_bytes()
    if tomllib is not None:
        doc = tomllib.loads(data.decode("utf-8"))
        tags = doc.get("tags", {})
        result = {}
        for name, body in tags.items():
            if not isinstance(body, dict) or "summary" not in body:
                raise SystemExit(
                    f"ajac_audit: manifest entry [tags.{name}] needs a 'summary'"
                )
            result[name] = str(body["summary"])
        return result
    # Fallback parser for pre-3.11 interpreters: only the exact shape this
    # manifest uses ([tags.<name>] sections with a summary string).
    result = {}
    current = None
    for raw in data.decode("utf-8").split("\n"):
        line = raw.strip()
        m = re.match(r"\[tags\.([A-Za-z0-9_-]+)\]$", line)
        if m:
            current = m.group(1)
            result[current] = ""
        elif current and line.startswith("summary"):
            result[current] = line.split("=", 1)[1].strip().strip('"')
    return result


def find_repo_root(start: Path) -> Path:
    p = start.resolve()
    for candidate in (p, *p.parents):
        if any((candidate / m).exists() for m in REPO_MARKERS):
            return candidate
    return start.resolve()


def discover(paths: list[str], repo_root: Path) -> list[Path]:
    """Resolve CLI paths to the list of sources to audit.

    Directories are walked (skipping the fixtures directory); files are
    taken verbatim, fixtures included — that is how the fixture tests
    audit intentionally-bad inputs.
    """
    fixture_root = (repo_root / FIXTURE_DIR).resolve()
    files: list[Path] = []
    roots = paths or [str(repo_root / r) for r in DEFAULT_ROOTS if (repo_root / r).is_dir()]
    for root in roots:
        p = Path(root)
        if p.is_file():
            files.append(p)
            continue
        if not p.is_dir():
            raise SystemExit(f"ajac_audit: no such file or directory: {root}")
        for child in sorted(p.rglob("*")):
            if child.suffix not in SOURCE_SUFFIXES or not child.is_file():
                continue
            if fixture_root in child.resolve().parents:
                continue
            files.append(child)
    return files


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ajac_audit.py",
        description="Concurrency-contract auditor for the ajac tree.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to audit "
                        "(default: src tests bench examples)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array on stdout")
    parser.add_argument("--explain", metavar="RULE",
                        help="print the contract a rule enforces and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids with one-line summaries and exit")
    parser.add_argument("--manifest", metavar="PATH",
                        help=f"racy-ok tag manifest (default: {MANIFEST_NAME} "
                             "next to this script)")
    try:
        args = parser.parse_args(argv)
    except SystemExit as e:
        # argparse exits 2 on usage errors already; normalize --help to 0.
        return int(e.code or 0)

    if args.list_rules:
        for rule, text in RULES.items():
            first = text.split("\n", 1)[0].rstrip(":")
            print(f"{rule:22s} {first}")
        return 0

    if args.explain:
        if args.explain not in RULES:
            print(f"ajac_audit: unknown rule '{args.explain}' "
                  f"(known: {', '.join(RULES)})", file=sys.stderr)
            return 2
        print(f"[{args.explain}]\n")
        print(RULES[args.explain])
        return 0

    script_dir = Path(__file__).resolve().parent
    repo_root = find_repo_root(script_dir)
    manifest = Path(args.manifest) if args.manifest else script_dir / MANIFEST_NAME
    try:
        tags = load_manifest(manifest)
        files = discover(args.paths, repo_root)
    except SystemExit as e:
        print(e, file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in files:
        findings.extend(audit_file(load_file(path, repo_root), tags))

    if args.json:
        print(json.dumps([f.as_json() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.text())
        if findings:
            rules = sorted({f.rule for f in findings})
            print(f"ajac_audit: {len(findings)} finding(s) "
                  f"[{', '.join(rules)}] in {len(files)} file(s)", file=sys.stderr)
            print("ajac_audit: run with --explain <rule> for the contract "
                  "and how to fix it", file=sys.stderr)
        else:
            print(f"ajac_audit: OK ({len(files)} file(s) audited)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
