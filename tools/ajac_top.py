#!/usr/bin/env python3
"""Live terminal dashboard over an ajac telemetry NDJSON stream.

Tails the newline-delimited JSON file an NdjsonSink writes (e.g. via
`solver_cli --telemetry-ndjson run.ndjson`) and renders a top-style view:
one row per actor from its latest beacon, plus the monitor's global
estimates — relative residual, rho-hat, ETA-to-tolerance, iteration
imbalance — and any latched straggler flags. Stdlib only; works on a file
still being written (follows appended lines like `tail -f`) or on a
finished stream with --once.

Usage:
    tools/ajac_top.py run.ndjson              # follow, refresh every 0.5 s
    tools/ajac_top.py run.ndjson --once       # one snapshot of a done run
    tools/ajac_top.py run.ndjson --interval 2
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def fmt_duration(us: float) -> str:
    if us < 0:
        return "-"
    if us < 1e3:
        return f"{us:.0f}us"
    if us < 1e6:
        return f"{us / 1e3:.1f}ms"
    return f"{us / 1e6:.2f}s"


class Dashboard:
    def __init__(self) -> None:
        self.actors: dict[int, dict] = {}
        self.estimate: dict | None = None
        self.records = 0
        self.bad_lines = 0

    def ingest(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            self.bad_lines += 1  # partial tail line; retried next poll
            return
        self.records += 1
        if rec.get("type") == "beacon":
            self.actors[int(rec["actor"])] = rec
        elif rec.get("type") == "estimate":
            self.estimate = rec

    def render(self) -> str:
        lines = []
        est = self.estimate
        lines.append(
            f"ajac_top — {self.records} records, "
            f"{len(self.actors)} actors reporting"
        )
        if est is not None:
            rel = est.get("global_rel_residual", -1.0)
            rel_s = f"{rel:.3e}" if rel >= 0 else "-"
            rho = est.get("rho_hat", 0.0)
            rho_s = f"{rho:.6f}" if rho > 0 else "-"
            lines.append(
                f"  rel.residual {rel_s}   rho-hat {rho_s}   "
                f"eta {fmt_duration(est.get('eta_us', -1.0))}   "
                f"imbalance {est.get('iteration_imbalance', 0.0):.3f}   "
                f"dropped {est.get('dropped', 0)}"
            )
            for s in est.get("stragglers", []):
                lines.append(
                    f"  STRAGGLER actor {s['actor']} since "
                    f"{fmt_duration(s['detected_ts_us'])} "
                    f"(rate {s['rate']:.3g} vs median "
                    f"{s['median_rate']:.3g} relax/us)"
                )
        lines.append("")
        lines.append(
            f"  {'actor':>5} {'iteration':>12} {'relaxations':>14} "
            f"{'own |r|_1':>12} {'draws':>12} {'refresh':>8} {'ts':>10}"
        )
        flagged = {
            s["actor"] for s in (est or {}).get("stragglers", [])
        }
        for actor in sorted(self.actors):
            b = self.actors[actor]
            mark = "!" if actor in flagged else " "
            lines.append(
                f" {mark}{actor:>5} {b['iteration']:>12} "
                f"{b['relaxations']:>14} {b['own_residual_1']:>12.3e} "
                f"{b['policy_draws']:>12} {b['weight_refreshes']:>8} "
                f"{fmt_duration(b['ts_us']):>10}"
            )
        return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("stream", help="telemetry NDJSON file to tail")
    parser.add_argument("--interval", type=float, default=0.5,
                        help="refresh period in seconds (default 0.5)")
    parser.add_argument("--once", action="store_true",
                        help="read what is there, print one snapshot, exit")
    args = parser.parse_args()

    dash = Dashboard()
    try:
        f = open(args.stream, "r", encoding="utf-8")
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    with f:
        # A line still being appended to fails to parse and is re-read on
        # the next poll from the saved offset.
        offset = 0
        while True:
            f.seek(offset)
            while True:
                line = f.readline()
                if not line.endswith("\n"):
                    break  # incomplete tail (or EOF); re-read next poll
                offset = f.tell()
                dash.ingest(line)
            if args.once:
                print(dash.render())
                return 0
            # Clear screen + home, then the frame.
            sys.stdout.write("\x1b[2J\x1b[H" + dash.render() + "\n")
            sys.stdout.flush()
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0


if __name__ == "__main__":
    sys.exit(main())
