#!/usr/bin/env python3
"""Gate the row-selection policy guarantees from a bench_policies report.

Reads the JSON report written by `bench_policies --json ...` and checks the
two claims the policy subsystem makes:

 1. Rate bound (table `policy_rates`): the measured tail contraction gap of
    uniform-random relaxation stays within [--ratio-lo, --ratio-hi] times
    the Avron/Druinsky/Gupta prediction lambda_min/n on every matrix. Too
    low means the sampler is broken (a correct uniform sampler can never
    beat... fall below the expectation bound); too high means the tail is
    not tracking lambda_min (wrong matrix, wrong burn-in, or a rate
    measurement bug).

 2. Skewed-residual win (table `policy_solve`): on the `skewed` fixture the
    residual-weighted policy must converge in at most 1/--min-speedup of
    natural order's relaxations. The measured win is ~10x; the default
    floor of 3x catches a regression to parity (which is exactly what
    raw-|r_i| weighting without stencil smoothing degrades to — see
    src/runtime/include/ajac/runtime/row_policy.hpp) while leaving room
    for seed-to-seed variance. Relaxation counts for fixed seeds are
    deterministic at 1 thread, so --noise-tolerance-pct only matters if CI
    ever runs the bench multi-threaded.

Exit status: 0 ok, 1 a gate failed or a table/row is missing, 2 bad input.

Usage: tools/check_policy_rates.py report.json [--min-speedup 3.0]
"""

import argparse
import json
import sys


def table_rows(report: dict, name: str):
    table = report.get("tables", {}).get(name)
    if table is None:
        raise KeyError(name)
    columns = table["columns"]
    return [dict(zip(columns, row)) for row in table["rows"]]


def check_rates(report: dict, lo: float, hi: float) -> list:
    failures = []
    rows = table_rows(report, "policy_rates")
    if not rows:
        failures.append("policy_rates table is empty")
    for row in rows:
        ratio = float(row["gap ratio"])
        ok = lo <= ratio <= hi
        print(f"check_policy_rates: {'OK' if ok else 'FAIL'} — "
              f"{row['matrix']}: measured/theory gap ratio {ratio:.3f} "
              f"(allowed [{lo}, {hi}])")
        if not ok:
            failures.append(f"{row['matrix']} gap ratio {ratio:.3f}")
    return failures


def check_skewed_win(report: dict, min_speedup: float,
                     noise_pct: float) -> list:
    relaxations = {}
    for row in table_rows(report, "policy_solve"):
        if row["problem"] == "skewed":
            if row["converged"] != "yes":
                return [f"skewed/{row['policy']} did not converge"]
            relaxations[row["policy"]] = float(row["relaxations"])
    missing = {"natural", "weighted"} - set(relaxations)
    if missing:
        return [f"policy_solve lacks skewed rows for {sorted(missing)}"]

    speedup = relaxations["natural"] / relaxations["weighted"]
    floor = min_speedup * (1.0 - noise_pct / 100.0)
    ok = speedup >= floor
    print(f"check_policy_rates: {'OK' if ok else 'FAIL'} — skewed fixture: "
          f"natural {relaxations['natural']:,.0f} relaxations, weighted "
          f"{relaxations['weighted']:,.0f}, speedup {speedup:.2f}x "
          f"(floor {min_speedup}x - {noise_pct}% noise = {floor:.2f}x)")
    return [] if ok else [f"skewed speedup {speedup:.2f}x < {floor:.2f}x"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="bench_policies --json output file")
    parser.add_argument("--ratio-lo", type=float, default=0.85,
                        help="minimum measured/theoretical gap ratio")
    parser.add_argument("--ratio-hi", type=float, default=2.5,
                        help="maximum measured/theoretical gap ratio")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="minimum natural/weighted relaxation ratio on "
                             "the skewed fixture")
    parser.add_argument("--noise-tolerance-pct", type=float, default=3.0,
                        help="jitter allowance subtracted from the speedup "
                             "floor, in percent")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_policy_rates: cannot read {args.report}: {e}",
              file=sys.stderr)
        return 2

    try:
        failures = check_rates(report, args.ratio_lo, args.ratio_hi)
        failures += check_skewed_win(report, args.min_speedup,
                                     args.noise_tolerance_pct)
    except (KeyError, TypeError, ValueError) as e:
        print(f"check_policy_rates: malformed report {args.report}: {e} "
              f"(run bench_policies --json to produce it)", file=sys.stderr)
        return 1

    if failures:
        print(f"check_policy_rates: {len(failures)} gate(s) failed: "
              f"{'; '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
