#!/usr/bin/env python3
"""Gate the observability layer's overhead from a bench_kernels JSON report.

Reads a google-benchmark JSON file (produced by `bench_kernels --json ...`)
and compares the metrics-enabled asynchronous solve against the disabled
one:

    BM_SolveSharedAsync/32/real_time         (metrics == nullptr)
    BM_SolveSharedAsyncMetrics/32/real_time  (live MetricsRegistry)

The instrumented run may be at most --max-overhead-pct slower in
items_per_second (default 5, the CI budget; the ISSUE acceptance bound for
a null registry is 2 — pass --max-overhead-pct 2 against a pair of runs
that both use metrics == nullptr to check that claim). Exit status: 0 ok,
1 over budget or benchmarks missing, 2 bad input.

Usage: tools/check_metrics_overhead.py report.json [--max-overhead-pct 5]
"""

import argparse
import json
import sys

BASELINE = "BM_SolveSharedAsync/32/real_time"
INSTRUMENTED = "BM_SolveSharedAsyncMetrics/32/real_time"


def items_per_second(report: dict, name: str) -> float:
    # With --benchmark_repetitions the report carries one entry per
    # repetition plus aggregates; use the mean aggregate when present,
    # otherwise the (single) plain iteration entry.
    fallback = None
    for bench in report.get("benchmarks", []):
        run_name = bench.get("run_name", bench.get("name"))
        if run_name != name:
            continue
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        if bench.get("aggregate_name") == "mean":
            return float(rate)
        if bench.get("run_type", "iteration") == "iteration" and fallback is None:
            fallback = float(rate)
    if fallback is None:
        raise KeyError(name)
    return fallback


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="bench_kernels --json output file")
    parser.add_argument("--max-overhead-pct", type=float, default=5.0,
                        help="maximum tolerated slowdown in percent")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_metrics_overhead: cannot read {args.report}: {e}",
              file=sys.stderr)
        return 2

    try:
        base = items_per_second(report, BASELINE)
        inst = items_per_second(report, INSTRUMENTED)
    except KeyError as e:
        print(f"check_metrics_overhead: benchmark {e} missing from report "
              f"(run bench_kernels without a filter excluding SolveShared)",
              file=sys.stderr)
        return 1

    if base <= 0:
        print("check_metrics_overhead: baseline items_per_second is zero",
              file=sys.stderr)
        return 2

    overhead_pct = (base - inst) / base * 100.0
    verdict = "OK" if overhead_pct <= args.max_overhead_pct else "FAIL"
    print(f"check_metrics_overhead: {verdict} — "
          f"disabled {base:,.0f} items/s, enabled {inst:,.0f} items/s, "
          f"overhead {overhead_pct:+.2f}% (budget {args.max_overhead_pct}%)")
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
