#!/usr/bin/env python3
"""Gate the observability layer's overhead from a bench_kernels JSON report.

Reads a google-benchmark JSON file (produced by `bench_kernels --json ...`)
and compares each metrics-enabled solve against its disabled twin:

    BM_SolveSharedAsync/32/real_time         (metrics == nullptr)
    BM_SolveSharedAsyncMetrics/32/real_time  (live MetricsRegistry)

    BM_SolveSharedBatchMetricsOff/real_time  (k=8 batch, metrics == nullptr)
    BM_SolveSharedBatchMetrics/real_time     (k=8 batch, live registry)

    BM_SolveSharedAsync/32/real_time           (stream == nullptr)
    BM_SolveSharedAsyncStreaming/32/real_time  (live TelemetryHub + monitor)

Each instrumented run may be at most --max-overhead-pct slower in
items_per_second (default 5, the CI budget; the ISSUE acceptance bound for
a null registry is 2 — pass --max-overhead-pct 2 against a pair of runs
that both use metrics == nullptr to check that claim). The batch pair is
checked only when present in the report, so the gate still works on older
baselines. Throughput is the median over --benchmark_repetitions (see
check_kernel_speedup.py for why median, not mean). Exit status: 0 ok,
1 over budget or benchmarks missing, 2 bad input.

Usage: tools/check_metrics_overhead.py report.json [--max-overhead-pct 5]
"""

import argparse
import json
import statistics
import sys

PAIRS = [
    ("scalar", "BM_SolveSharedAsync/32/real_time",
     "BM_SolveSharedAsyncMetrics/32/real_time", True),
    ("batch k=8", "BM_SolveSharedBatchMetricsOff/real_time",
     "BM_SolveSharedBatchMetrics/real_time", False),
    ("scalar streaming", "BM_SolveSharedAsync/32/real_time",
     "BM_SolveSharedAsyncStreaming/32/real_time", True),
]


def items_per_second(report: dict, name: str) -> float:
    # With --benchmark_repetitions the report carries one entry per
    # repetition plus aggregates. Prefer the median aggregate; otherwise
    # compute the median of the repetition entries ourselves (also covers
    # the single-run case).
    rates = []
    for bench in report.get("benchmarks", []):
        run_name = bench.get("run_name", bench.get("name"))
        if run_name != name:
            continue
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        if bench.get("aggregate_name") == "median":
            return float(rate)
        if bench.get("run_type", "iteration") == "iteration":
            rates.append(float(rate))
    if not rates:
        raise KeyError(name)
    return statistics.median(rates)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="bench_kernels --json output file")
    parser.add_argument("--max-overhead-pct", type=float, default=5.0,
                        help="maximum tolerated slowdown in percent")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_metrics_overhead: cannot read {args.report}: {e}",
              file=sys.stderr)
        return 2

    status = 0
    for label, baseline, instrumented, required in PAIRS:
        try:
            base = items_per_second(report, baseline)
            inst = items_per_second(report, instrumented)
        except KeyError as e:
            if not required:
                print(f"check_metrics_overhead: {label} pair absent "
                      f"({e} not in report), skipping")
                continue
            print(f"check_metrics_overhead: benchmark {e} missing from "
                  f"report (run bench_kernels without a filter excluding "
                  f"SolveShared)", file=sys.stderr)
            return 1

        if base <= 0:
            print(f"check_metrics_overhead: {label} baseline "
                  f"items_per_second is zero", file=sys.stderr)
            return 2

        overhead_pct = (base - inst) / base * 100.0
        verdict = "OK" if overhead_pct <= args.max_overhead_pct else "FAIL"
        print(f"check_metrics_overhead: {verdict} [{label}] — "
              f"disabled {base:,.0f} items/s, enabled {inst:,.0f} items/s, "
              f"overhead {overhead_pct:+.2f}% "
              f"(budget {args.max_overhead_pct}%)")
        if verdict != "OK":
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
